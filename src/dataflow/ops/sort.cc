#include "dataflow/ops/sort.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "common/serde.h"
#include "dataflow/operator.h"
#include "io/file.h"

namespace pregelix {

namespace {

/// Encodes fields into the raw tuple format of frame.h.
void EncodeTuple(std::span<const Slice> fields, std::string* out) {
  const int n = static_cast<int>(fields.size());
  size_t data = 0;
  for (const Slice& f : fields) data += f.size();
  out->clear();
  out->reserve(4u * n + data);
  uint32_t end = 0;
  char buf[4];
  for (const Slice& f : fields) {
    end += static_cast<uint32_t>(f.size());
    EncodeFixed32(buf, end);
    out->append(buf, 4);
  }
  for (const Slice& f : fields) {
    out->append(f.data(), f.size());
  }
}

/// Sequential cursor over one run file.
class RunCursor {
 public:
  RunCursor(std::string path, int field_count, WorkerMetrics* metrics)
      : path_(std::move(path)), accessor_(field_count), metrics_(metrics) {}

  Status Init() {
    PREGELIX_RETURN_NOT_OK(RunFileReader::Open(path_, metrics_, &reader_));
    return Advance();
  }

  bool Valid() const { return valid_; }

  Status Next() {
    ++index_;
    if (index_ >= accessor_.tuple_count()) {
      return Advance();
    }
    return Status::OK();
  }

  Slice field(int f) const { return accessor_.field(index_, f); }
  int field_count() const { return accessor_.field_count(); }

  /// Removes the backing file (runs are single-use).
  void Discard() {
    reader_.reset();
    DeleteFileIfExists(path_);
  }

 private:
  Status Advance() {
    for (;;) {
      Status s = reader_->NextBlock(&frame_);
      if (s.IsNotFound()) {
        valid_ = false;
        return Status::OK();
      }
      PREGELIX_RETURN_NOT_OK(s);
      accessor_.Reset(Slice(frame_));
      if (accessor_.tuple_count() > 0) {
        index_ = 0;
        valid_ = true;
        return Status::OK();
      }
    }
  }

  std::string path_;
  std::unique_ptr<RunFileReader> reader_;
  std::string frame_;
  FrameTupleAccessor accessor_;
  int index_ = 0;
  bool valid_ = false;
  WorkerMetrics* metrics_;
};

/// Merges the given cursors in key order, optionally combining equal keys,
/// and feeds `emit`. `apply_finish` controls whether the combiner's final
/// transform runs (only on the last pass).
Status MergeCursors(std::vector<std::unique_ptr<RunCursor>>& cursors,
                    int key_field, const GroupCombiner& combiner,
                    bool apply_finish, WorkerMetrics* metrics,
                    const TupleEmitFn& emit) {
  uint64_t tuples = 0;
  std::vector<Slice> fields;
  for (;;) {
    int best = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (!cursors[i]->Valid()) continue;
      if (best < 0 || cursors[i]->field(key_field).compare(
                          cursors[best]->field(key_field)) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;

    if (combiner.valid()) {
      const std::string key = cursors[best]->field(0).ToString();
      std::string acc;
      combiner.init(cursors[best]->field(1), &acc);
      PREGELIX_RETURN_NOT_OK(cursors[best]->Next());
      ++tuples;
      // Fold in every other tuple with the same key, from any cursor.
      for (auto& cursor : cursors) {
        while (cursor->Valid() && cursor->field(0) == Slice(key)) {
          combiner.step(cursor->field(1), &acc);
          PREGELIX_RETURN_NOT_OK(cursor->Next());
          ++tuples;
        }
      }
      if (apply_finish && combiner.finish) combiner.finish(&acc);
      const Slice out[2] = {Slice(key), Slice(acc)};
      PREGELIX_RETURN_NOT_OK(emit(out));
    } else {
      RunCursor& c = *cursors[best];
      fields.clear();
      for (int f = 0; f < c.field_count(); ++f) {
        fields.push_back(c.field(f));
      }
      PREGELIX_RETURN_NOT_OK(emit(fields));
      PREGELIX_RETURN_NOT_OK(c.Next());
      ++tuples;
    }
  }
  if (metrics != nullptr) metrics->AddCpuOps(tuples);
  return Status::OK();
}

}  // namespace

namespace internal_sort {

// ---------------------------------------------------------------------------
// RunWriter

RunWriter::RunWriter(const SortConfig& config, const std::string& path)
    : appender_(config.frame_size, config.field_count),
      path_(path),
      config_(&config) {
  open_status_ = RunFileWriter::Open(path, config.metrics, &file_);
}

Status RunWriter::Append(std::span<const Slice> fields) {
  PREGELIX_RETURN_NOT_OK(open_status_);
  if (!appender_.Append(fields)) {
    PREGELIX_RETURN_NOT_OK(file_->AppendBlock(appender_.Take()));
    PREGELIX_CHECK(appender_.Append(fields));
  }
  return Status::OK();
}

Status RunWriter::Finish() {
  PREGELIX_RETURN_NOT_OK(open_status_);
  if (!appender_.empty()) {
    PREGELIX_RETURN_NOT_OK(file_->AppendBlock(appender_.Take()));
  }
  return file_->Finish();
}

// ---------------------------------------------------------------------------
// MergeRuns

Status MergeRuns(const SortConfig& config, const GroupCombiner& combiner,
                 std::vector<std::string> run_paths, const TupleEmitFn& emit) {
  TraceSpan span(config.tracer, "sort.merge", trace_cat::kDataflow,
                 config.worker, config.metrics);
  span.AddArg("runs", static_cast<int64_t>(run_paths.size()));
  span.AddArg("fanin", config.merge_fanin);
  uint64_t pass_id = 0;
  // Intermediate passes until the fan-in fits.
  while (static_cast<int>(run_paths.size()) > config.merge_fanin) {
    std::vector<std::string> next_paths;
    for (size_t start = 0; start < run_paths.size();
         start += config.merge_fanin) {
      const size_t end =
          std::min(run_paths.size(), start + config.merge_fanin);
      std::vector<std::unique_ptr<RunCursor>> cursors;
      for (size_t i = start; i < end; ++i) {
        cursors.push_back(std::make_unique<RunCursor>(
            run_paths[i], config.field_count, config.metrics));
        PREGELIX_RETURN_NOT_OK(cursors.back()->Init());
      }
      const std::string out_path = config.scratch_prefix + "-merge-" +
                                   std::to_string(pass_id++) ;
      RunWriter writer(config, out_path);
      PREGELIX_RETURN_NOT_OK(MergeCursors(
          cursors, config.key_field, combiner, /*apply_finish=*/false,
          config.metrics,
          [&](std::span<const Slice> fields) { return writer.Append(fields); }));
      PREGELIX_RETURN_NOT_OK(writer.Finish());
      for (auto& cursor : cursors) cursor->Discard();
      next_paths.push_back(out_path);
    }
    run_paths = std::move(next_paths);
  }
  // Final pass.
  std::vector<std::unique_ptr<RunCursor>> cursors;
  for (const std::string& path : run_paths) {
    cursors.push_back(std::make_unique<RunCursor>(path, config.field_count,
                                                  config.metrics));
    PREGELIX_RETURN_NOT_OK(cursors.back()->Init());
  }
  PREGELIX_RETURN_NOT_OK(MergeCursors(cursors, config.key_field, combiner,
                                      /*apply_finish=*/true, config.metrics,
                                      emit));
  for (auto& cursor : cursors) cursor->Discard();
  return Status::OK();
}

}  // namespace internal_sort

// ---------------------------------------------------------------------------
// ExternalSortGrouper

ExternalSortGrouper::ExternalSortGrouper(const SortConfig& config,
                                         GroupCombiner combiner)
    : config_(config), combiner_(std::move(combiner)) {
  if (combiner_.valid()) {
    PREGELIX_CHECK(config_.field_count == 2 && config_.key_field == 0)
        << "combining group-by operates on (key, payload) tuples";
  }
  pool_.reserve(std::min<size_t>(config_.memory_budget_bytes, 1u << 20));
}

ExternalSortGrouper::~ExternalSortGrouper() {
  // Drop any unconsumed runs.
  for (const std::string& path : run_paths_) {
    DeleteFileIfExists(path);
  }
}

Status ExternalSortGrouper::Add(std::span<const Slice> fields) {
  PREGELIX_CHECK(!finished_);
  std::string tuple;
  EncodeTuple(fields, &tuple);
  if (pool_.size() + tuple.size() > config_.memory_budget_bytes &&
      !entries_.empty()) {
    PREGELIX_RETURN_NOT_OK(SpillBatch());
  }
  entries_.push_back(Entry{static_cast<uint32_t>(pool_.size()),
                           static_cast<uint32_t>(tuple.size())});
  pool_.append(tuple);
  if (config_.metrics != nullptr) config_.metrics->AddCpuOps(1);
  return Status::OK();
}

Status ExternalSortGrouper::DrainBatchSorted(const TupleEmitFn& fn) {
  const int key_field = config_.key_field;
  const int field_count = config_.field_count;
  auto key_of = [&](const Entry& e) {
    return TupleFieldFromRaw(Slice(pool_.data() + e.offset, e.size),
                             field_count, key_field);
  };
  std::sort(entries_.begin(), entries_.end(),
            [&](const Entry& a, const Entry& b) {
              return key_of(a).compare(key_of(b)) < 0;
            });
  if (config_.metrics != nullptr) {
    config_.metrics->AddCpuOps(entries_.size());
  }
  std::vector<Slice> fields;
  if (combiner_.valid()) {
    size_t i = 0;
    while (i < entries_.size()) {
      const Slice key = key_of(entries_[i]);
      Slice payload = TupleFieldFromRaw(
          Slice(pool_.data() + entries_[i].offset, entries_[i].size), 2, 1);
      std::string acc;
      combiner_.init(payload, &acc);
      size_t j = i + 1;
      while (j < entries_.size() && key_of(entries_[j]) == key) {
        combiner_.step(
            TupleFieldFromRaw(
                Slice(pool_.data() + entries_[j].offset, entries_[j].size), 2,
                1),
            &acc);
        ++j;
      }
      const Slice out[2] = {key, Slice(acc)};
      PREGELIX_RETURN_NOT_OK(fn(out));
      i = j;
    }
  } else {
    for (const Entry& e : entries_) {
      const Slice tuple(pool_.data() + e.offset, e.size);
      fields.clear();
      for (int f = 0; f < field_count; ++f) {
        fields.push_back(TupleFieldFromRaw(tuple, field_count, f));
      }
      PREGELIX_RETURN_NOT_OK(fn(fields));
    }
  }
  entries_.clear();
  pool_.clear();
  return Status::OK();
}

Status ExternalSortGrouper::SpillBatch() {
  TraceSpan span(config_.tracer, "sort.run_generation", trace_cat::kDataflow,
                 config_.worker, config_.metrics);
  span.AddArg("tuples", static_cast<int64_t>(entries_.size()));
  span.AddArg("run", static_cast<int64_t>(next_run_id_));
  const std::string path =
      config_.scratch_prefix + "-run-" + std::to_string(next_run_id_++);
  internal_sort::RunWriter writer(config_, path);
  PREGELIX_RETURN_NOT_OK(DrainBatchSorted(
      [&](std::span<const Slice> fields) { return writer.Append(fields); }));
  PREGELIX_RETURN_NOT_OK(writer.Finish());
  run_paths_.push_back(path);
  return Status::OK();
}

Status ExternalSortGrouper::Finish(const TupleEmitFn& emit) {
  PREGELIX_CHECK(!finished_);
  finished_ = true;
  if (run_paths_.empty()) {
    // Fully in-memory: a single sorted drain, applying the final transform.
    if (combiner_.valid() && combiner_.finish) {
      return DrainBatchSorted([&](std::span<const Slice> fields) {
        std::string acc = fields[1].ToString();
        combiner_.finish(&acc);
        const Slice out[2] = {fields[0], Slice(acc)};
        return emit(out);
      });
    }
    return DrainBatchSorted(emit);
  }
  if (!entries_.empty()) {
    PREGELIX_RETURN_NOT_OK(SpillBatch());
  }
  std::vector<std::string> runs = std::move(run_paths_);
  run_paths_.clear();
  return internal_sort::MergeRuns(config_, combiner_, std::move(runs), emit);
}

// ---------------------------------------------------------------------------
// HashSortGrouper

HashSortGrouper::HashSortGrouper(const SortConfig& config,
                                 GroupCombiner combiner)
    : config_(config), combiner_(std::move(combiner)) {
  PREGELIX_CHECK(combiner_.valid())
      << "HashSort group-by requires combine hooks";
  PREGELIX_CHECK(config_.field_count == 2 && config_.key_field == 0);
}

HashSortGrouper::~HashSortGrouper() {
  for (const std::string& path : run_paths_) {
    DeleteFileIfExists(path);
  }
}

Status HashSortGrouper::Add(std::span<const Slice> fields) {
  PREGELIX_CHECK(!finished_);
  const Slice key = fields[0];
  const Slice payload = fields[1];
  auto it = table_.find(key.ToString());
  if (it == table_.end()) {
    std::string acc;
    combiner_.init(payload, &acc);
    table_bytes_ += key.size() + acc.size() + 64;  // table overhead estimate
    table_.emplace(key.ToString(), std::move(acc));
  } else {
    const size_t before = it->second.size();
    combiner_.step(payload, &it->second);
    table_bytes_ += it->second.size() - before;
  }
  if (config_.metrics != nullptr) config_.metrics->AddCpuOps(1);
  if (table_bytes_ > config_.memory_budget_bytes) {
    PREGELIX_RETURN_NOT_OK(SpillTable());
  }
  return Status::OK();
}

Status HashSortGrouper::SpillTable() {
  if (table_.empty()) return Status::OK();
  TraceSpan span(config_.tracer, "hashsort.run_generation",
                 trace_cat::kDataflow, config_.worker, config_.metrics);
  span.AddArg("groups", static_cast<int64_t>(table_.size()));
  span.AddArg("run", static_cast<int64_t>(next_run_id_));
  std::vector<const std::pair<const std::string, std::string>*> sorted;
  sorted.reserve(table_.size());
  for (const auto& kv : table_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return Slice(a->first).compare(Slice(b->first)) < 0;
  });
  if (config_.metrics != nullptr) {
    config_.metrics->AddCpuOps(sorted.size());
  }
  const std::string path =
      config_.scratch_prefix + "-hrun-" + std::to_string(next_run_id_++);
  internal_sort::RunWriter writer(config_, path);
  for (const auto* kv : sorted) {
    const Slice out[2] = {Slice(kv->first), Slice(kv->second)};
    PREGELIX_RETURN_NOT_OK(writer.Append(out));
  }
  PREGELIX_RETURN_NOT_OK(writer.Finish());
  run_paths_.push_back(path);
  table_.clear();
  table_bytes_ = 0;
  return Status::OK();
}

Status HashSortGrouper::Finish(const TupleEmitFn& emit) {
  PREGELIX_CHECK(!finished_);
  finished_ = true;
  if (run_paths_.empty()) {
    std::vector<const std::pair<const std::string, std::string>*> sorted;
    sorted.reserve(table_.size());
    for (const auto& kv : table_) sorted.push_back(&kv);
    std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
      return Slice(a->first).compare(Slice(b->first)) < 0;
    });
    for (const auto* kv : sorted) {
      std::string acc = kv->second;
      if (combiner_.finish) combiner_.finish(&acc);
      const Slice out[2] = {Slice(kv->first), Slice(acc)};
      PREGELIX_RETURN_NOT_OK(emit(out));
    }
    table_.clear();
    table_bytes_ = 0;
    return Status::OK();
  }
  PREGELIX_RETURN_NOT_OK(SpillTable());
  std::vector<std::string> runs = std::move(run_paths_);
  run_paths_.clear();
  return internal_sort::MergeRuns(config_, combiner_, std::move(runs), emit);
}

// ---------------------------------------------------------------------------
// PreclusteredGrouper

PreclusteredGrouper::PreclusteredGrouper(GroupCombiner combiner,
                                         WorkerMetrics* metrics)
    : combiner_(std::move(combiner)), metrics_(metrics) {
  PREGELIX_CHECK(combiner_.valid());
}

Status PreclusteredGrouper::Add(const Slice& key, const Slice& payload,
                                const TupleEmitFn& emit) {
  if (metrics_ != nullptr) metrics_->AddCpuOps(1);
  if (has_group_ && key == Slice(current_key_)) {
    combiner_.step(payload, &acc_);
    return Status::OK();
  }
  PREGELIX_CHECK(!has_group_ || Slice(current_key_).compare(key) < 0)
      << "preclustered group-by received unsorted input";
  PREGELIX_RETURN_NOT_OK(EmitCurrent(emit));
  current_key_ = key.ToString();
  acc_.clear();
  combiner_.init(payload, &acc_);
  has_group_ = true;
  return Status::OK();
}

Status PreclusteredGrouper::EmitCurrent(const TupleEmitFn& emit) {
  if (!has_group_) return Status::OK();
  if (combiner_.finish) combiner_.finish(&acc_);
  const Slice out[2] = {Slice(current_key_), Slice(acc_)};
  return emit(out);
}

Status PreclusteredGrouper::Finish(const TupleEmitFn& emit) {
  Status s = EmitCurrent(emit);
  has_group_ = false;
  return s;
}

}  // namespace pregelix
