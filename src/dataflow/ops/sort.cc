#include "dataflow/ops/sort.h"

#include <algorithm>
#include <numeric>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/serde.h"
#include "common/time_ledger.h"
#include "dataflow/operator.h"
#include "dataflow/plan_profile.h"
#include "io/file.h"

namespace pregelix {

namespace {

/// Sequential cursor over one run file.
class RunCursor {
 public:
  RunCursor(std::string path, int field_count, WorkerMetrics* metrics,
            OverlapRuntime* overlap)
      : path_(std::move(path)),
        accessor_(field_count),
        metrics_(metrics),
        overlap_(overlap) {}

  Status Init() {
    PREGELIX_RETURN_NOT_OK(
        RunFileReader::Open(path_, metrics_, overlap_, &reader_));
    return Advance();
  }

  bool Valid() const { return valid_; }

  Status Next() {
    ++index_;
    if (index_ >= accessor_.tuple_count()) {
      return Advance();
    }
    return Status::OK();
  }

  Slice field(int f) const { return accessor_.field(index_, f); }
  int field_count() const { return accessor_.field_count(); }

  /// Removes the backing file (runs are single-use).
  void Discard() {
    reader_.reset();
    DeleteFileIfExists(path_);
  }

  /// Foreground ns spent blocked on prefetched refills (DESIGN.md §19).
  uint64_t io_wait_ns() const {
    return reader_ != nullptr ? reader_->io_wait_ns() : 0;
  }

 private:
  Status Advance() {
    for (;;) {
      Status s = reader_->NextBlock(&frame_);
      if (s.IsNotFound()) {
        valid_ = false;
        return Status::OK();
      }
      PREGELIX_RETURN_NOT_OK(s);
      accessor_.Reset(Slice(frame_));
      if (accessor_.tuple_count() > 0) {
        index_ = 0;
        valid_ = true;
        return Status::OK();
      }
    }
  }

  std::string path_;
  std::unique_ptr<RunFileReader> reader_;
  std::string frame_;
  FrameTupleAccessor accessor_;
  int index_ = 0;
  bool valid_ = false;
  WorkerMetrics* metrics_;
  OverlapRuntime* overlap_;
};

/// Tournament loser tree over the run cursors, keyed on the 8-byte
/// normalized key prefix (see NormalizedKeyPrefix in slice.h). Selecting
/// the next tuple of a k-way merge is O(log k) integer comparisons along
/// one root path instead of the O(k) full-key scan it replaces; the full
/// Slice compare runs only on a prefix tie.
///
/// Ordering invariant: a leaf beats another iff its key is strictly
/// smaller, or the keys are equal and its cursor index is lower. The index
/// tie-break reproduces the emission order of the previous linear scan
/// (lowest cursor wins among equal keys), which the differential suite
/// pins down as byte-identical output.
///
/// Layout: leaves are the k cursors padded to the next power of two `cap_`
/// with exhausted sentinels (-1, beaten by everything); tree_[1..cap_-1]
/// store the *loser* of the match played at that node, and the overall
/// winner is kept in winner_. Exhausting a cursor just turns its leaf into
/// a sentinel; no removal is needed.
class LoserTree {
 public:
  LoserTree(std::vector<std::unique_ptr<RunCursor>>& cursors, int key_field)
      : cursors_(cursors), key_field_(key_field) {}

  void Init() {
    const int k = static_cast<int>(cursors_.size());
    cap_ = 1;
    while (cap_ < k) cap_ <<= 1;
    norm_.assign(k, 0);
    for (int i = 0; i < k; ++i) Refresh(i);
    tree_.assign(cap_, -1);
    // One bottom-up replay: winners[p] is the winner of the subtree at p.
    std::vector<int> winners(2 * cap_, -1);
    for (int i = 0; i < k; ++i) {
      winners[cap_ + i] = cursors_[i]->Valid() ? i : -1;
    }
    for (int p = cap_ - 1; p >= 1; --p) {
      const int a = winners[2 * p];
      const int b = winners[2 * p + 1];
      if (Beats(b, a)) {
        winners[p] = b;
        tree_[p] = a;
      } else {
        winners[p] = a;
        tree_[p] = b;
      }
    }
    winner_ = winners[1];  // with cap_ == 1 this is leaf 0 itself
  }

  /// Cursor index holding the smallest key; -1 once every run is drained.
  int winner() const { return winner_; }
  /// Cached normalized prefix of the winner's key.
  uint64_t winner_norm() const { return norm_[winner_]; }

  /// Consumes the winner's current tuple and replays its root path.
  Status AdvanceWinner() {
    const int i = winner_;
    PREGELIX_RETURN_NOT_OK(fault::MaybeFail("sort.merge.refill"));
    PREGELIX_RETURN_NOT_OK(cursors_[i]->Next());
    Refresh(i);
    int contender = cursors_[i]->Valid() ? i : -1;
    for (int node = (cap_ + i) / 2; node >= 1; node /= 2) {
      if (Beats(tree_[node], contender)) std::swap(tree_[node], contender);
    }
    winner_ = contender;
    return Status::OK();
  }

 private:
  void Refresh(int i) {
    if (cursors_[i]->Valid()) {
      norm_[i] = NormalizedKeyPrefix(cursors_[i]->field(key_field_));
    }
  }

  /// Strictly-before in merge order; -1 marks an exhausted leaf.
  bool Beats(int a, int b) const {
    if (a < 0) return false;
    if (b < 0) return true;
    if (norm_[a] != norm_[b]) return norm_[a] < norm_[b];
    const int c = cursors_[a]->field(key_field_).compare(
        cursors_[b]->field(key_field_));
    if (c != 0) return c < 0;
    return a < b;
  }

  std::vector<std::unique_ptr<RunCursor>>& cursors_;
  const int key_field_;
  int cap_ = 1;
  std::vector<int> tree_;
  std::vector<uint64_t> norm_;
  int winner_ = -1;
};

/// Merges the given cursors in key order, optionally combining equal keys,
/// and feeds `emit`. `apply_finish` controls whether the combiner's final
/// transform runs (only on the last pass).
Status MergeCursors(std::vector<std::unique_ptr<RunCursor>>& cursors,
                    int key_field, const GroupCombiner& combiner,
                    bool apply_finish, WorkerMetrics* metrics,
                    const TupleEmitFn& emit) {
  // Time ledger: the k-way merge (and its combine fold) is the merge
  // phase; nested I/O scopes in the run-file/file layers suspend it.
  ScopedTimeCategory merge(TimeCategory::kMerge);
  uint64_t tuples = 0;
  LoserTree tree(cursors, key_field);
  tree.Init();
  if (combiner.valid()) {
    // Group-key and accumulator buffers persist across groups: assignment
    // reuses their capacity, so steady state allocates nothing per group.
    std::string group_key;
    std::string acc;
    while (tree.winner() >= 0) {
      RunCursor& w = *cursors[tree.winner()];
      const uint64_t group_norm = tree.winner_norm();
      const Slice first_key = w.field(0);
      group_key.assign(first_key.data(), first_key.size());
      combiner.init(w.field(1), &acc);
      PREGELIX_RETURN_NOT_OK(tree.AdvanceWinner());
      ++tuples;
      // Fold in every other tuple with the same key. The tree pops equal
      // keys lowest-cursor-first and drains each cursor's equal-key prefix
      // before moving on, matching the previous cursor-order fold.
      while (tree.winner() >= 0 && tree.winner_norm() == group_norm &&
             cursors[tree.winner()]->field(0) == Slice(group_key)) {
        combiner.step(cursors[tree.winner()]->field(1), &acc);
        PREGELIX_RETURN_NOT_OK(tree.AdvanceWinner());
        ++tuples;
      }
      if (apply_finish && combiner.finish) combiner.finish(&acc);
      const Slice out[2] = {Slice(group_key), Slice(acc)};
      PREGELIX_RETURN_NOT_OK(emit(out));
    }
  } else {
    std::vector<Slice> fields;
    while (tree.winner() >= 0) {
      RunCursor& c = *cursors[tree.winner()];
      fields.clear();
      for (int f = 0; f < c.field_count(); ++f) {
        fields.push_back(c.field(f));
      }
      PREGELIX_RETURN_NOT_OK(emit(fields));
      PREGELIX_RETURN_NOT_OK(tree.AdvanceWinner());
      ++tuples;
    }
  }
  if (metrics != nullptr) metrics->AddCpuOps(tuples);
  return Status::OK();
}

}  // namespace

namespace internal_sort {

// ---------------------------------------------------------------------------
// RunWriter

RunWriter::RunWriter(const SortConfig& config, const std::string& path)
    : appender_(config.frame_size, config.field_count),
      path_(path),
      config_(&config) {
  open_status_ = RunFileWriter::Open(path, config.metrics, config.overlap, &file_);
}

Status RunWriter::Append(std::span<const Slice> fields) {
  PREGELIX_RETURN_NOT_OK(open_status_);
  if (!appender_.Append(fields)) {
    const Slice block = appender_.FinalizeView();
    bytes_written_ += block.size();
    PREGELIX_RETURN_NOT_OK(file_->AppendBlock(block));
    appender_.Reset();
    PREGELIX_CHECK(appender_.Append(fields));
  }
  return Status::OK();
}

Status RunWriter::Finish() {
  PREGELIX_RETURN_NOT_OK(open_status_);
  if (!appender_.empty()) {
    const Slice block = appender_.FinalizeView();
    bytes_written_ += block.size();
    PREGELIX_RETURN_NOT_OK(file_->AppendBlock(block));
    appender_.Reset();
  }
  Status s = file_->Finish();
  if (config_->profile != nullptr) {
    config_->profile->AddIoWait(file_->io_wait_ns());
  }
  return s;
}

// ---------------------------------------------------------------------------
// MergeRuns

Status MergeRuns(const SortConfig& config, const GroupCombiner& combiner,
                 std::vector<std::string> run_paths, const TupleEmitFn& emit) {
  TraceSpan span(config.tracer, "sort.merge", trace_cat::kDataflow,
                 config.worker, config.metrics);
  span.AddArg("runs", static_cast<int64_t>(run_paths.size()));
  span.AddArg("fanin", config.merge_fanin);
  uint64_t pass_id = 0;
  // Intermediate passes until the fan-in fits.
  while (static_cast<int>(run_paths.size()) > config.merge_fanin) {
    std::vector<std::string> next_paths;
    for (size_t start = 0; start < run_paths.size();
         start += config.merge_fanin) {
      const size_t end =
          std::min(run_paths.size(), start + config.merge_fanin);
      std::vector<std::unique_ptr<RunCursor>> cursors;
      for (size_t i = start; i < end; ++i) {
        cursors.push_back(std::make_unique<RunCursor>(
            run_paths[i], config.field_count, config.metrics, config.overlap));
        PREGELIX_RETURN_NOT_OK(cursors.back()->Init());
      }
      const std::string out_path = config.scratch_prefix + "-merge-" +
                                   std::to_string(pass_id++) ;
      RunWriter writer(config, out_path);
      PREGELIX_RETURN_NOT_OK(MergeCursors(
          cursors, config.key_field, combiner, /*apply_finish=*/false,
          config.metrics,
          [&](std::span<const Slice> fields) { return writer.Append(fields); }));
      PREGELIX_RETURN_NOT_OK(writer.Finish());
      for (auto& cursor : cursors) {
        if (config.profile != nullptr) {
          config.profile->AddIoWait(cursor->io_wait_ns());
        }
        cursor->Discard();
      }
      next_paths.push_back(out_path);
    }
    run_paths = std::move(next_paths);
  }
  // Final pass.
  std::vector<std::unique_ptr<RunCursor>> cursors;
  for (const std::string& path : run_paths) {
    cursors.push_back(std::make_unique<RunCursor>(path, config.field_count,
                                                  config.metrics,
                                                  config.overlap));
    PREGELIX_RETURN_NOT_OK(cursors.back()->Init());
  }
  PREGELIX_RETURN_NOT_OK(MergeCursors(cursors, config.key_field, combiner,
                                      /*apply_finish=*/true, config.metrics,
                                      emit));
  for (auto& cursor : cursors) {
    if (config.profile != nullptr) {
      config.profile->AddIoWait(cursor->io_wait_ns());
    }
    cursor->Discard();
  }
  return Status::OK();
}

}  // namespace internal_sort

namespace {

/// Eager-ship profitability (DESIGN.md §19): a drained batch ships straight
/// downstream only when in-batch combining was heavy — at most half as many
/// distinct groups as tuples absorbed. Heavy in-batch combining means a
/// key's duplicates arrive clustered, so the batch already collapsed them
/// and the cross-batch run merge has little left to earn; the spill's
/// write and read-back are then pure overhead. A batch that barely combined
/// implies its keys recur *across* batches — only the run merge can
/// collapse those, so shipping such a batch would re-send nearly every
/// duplicate over the wire. Depends only on batch content, so the decision
/// is deterministic across runs and recovery.
bool EagerShipProfitable(size_t groups, size_t tuples) {
  return groups * 2 <= tuples;
}

}  // namespace

// ---------------------------------------------------------------------------
// ExternalSortGrouper

ExternalSortGrouper::ExternalSortGrouper(const SortConfig& config,
                                         GroupCombiner combiner)
    : config_(config), combiner_(std::move(combiner)) {
  if (combiner_.valid()) {
    PREGELIX_CHECK(config_.field_count == 2 && config_.key_field == 0)
        << "combining group-by operates on (key, payload) tuples";
  }
  pool_.reserve(std::min<size_t>(config_.memory_budget_bytes, 1u << 20));
}

ExternalSortGrouper::~ExternalSortGrouper() {
  // Drop any unconsumed runs.
  for (const std::string& path : run_paths_) {
    DeleteFileIfExists(path);
  }
}

size_t ExternalSortGrouper::BatchBytes() const {
  return pool_.size() + entries_.capacity() * sizeof(Entry);
}

Status ExternalSortGrouper::Add(std::span<const Slice> fields) {
  PREGELIX_CHECK(!finished_);
  const int n = static_cast<int>(fields.size());
  size_t data = 0;
  for (const Slice& f : fields) data += f.size();
  const size_t tuple_size = 4u * n + data;
  if (!entries_.empty() &&
      BatchBytes() + tuple_size > config_.memory_budget_bytes) {
    if (eager_sink_ && last_flush_tuples_ > 0 &&
        EagerShipProfitable(last_flush_groups_, last_flush_tuples_)) {
      // Eager shuffle (§19): the previous flush combined heavily, so this
      // batch's groups are expected near-final — ship the sorted,
      // pre-combined batch downstream now instead of parking it in a run
      // file. No final transform; the receiving group-by folds the partials
      // and applies it once. Poorly-combining batches keep spilling so
      // cross-batch duplicates are merged before they reach the wire. The
      // previous flush's ratio stands in for this one's (message mixes
      // shift slowly within a superstep) so the decision costs nothing;
      // the first flush always spills.
      PREGELIX_RETURN_NOT_OK(DrainBatchSorted(eager_sink_));
    } else {
      PREGELIX_RETURN_NOT_OK(SpillBatch());
    }
  }
  // Encode the tuple straight into the pool — no temporary string.
  const size_t offset = pool_.size();
  char buf[4];
  uint32_t end = 0;
  for (const Slice& f : fields) {
    end += static_cast<uint32_t>(f.size());
    EncodeFixed32(buf, end);
    pool_.append(buf, 4);
  }
  for (const Slice& f : fields) {
    pool_.append(f.data(), f.size());
  }
  entries_.push_back(Entry{NormalizedKeyPrefix(fields[config_.key_field]),
                           static_cast<uint32_t>(offset),
                           static_cast<uint32_t>(tuple_size)});
  const int64_t key_size =
      static_cast<int64_t>(fields[config_.key_field].size());
  if (batch_key_size_ == -1) {
    batch_key_size_ = key_size <= 8 ? key_size : -2;
  } else if (batch_key_size_ != key_size) {
    batch_key_size_ = -2;
  }
  if (config_.metrics != nullptr) config_.metrics->AddCpuOps(1);
  return Status::OK();
}

Slice ExternalSortGrouper::EntryKey(const Entry& e) const {
  return TupleFieldFromRaw(Slice(pool_.data() + e.offset, e.size),
                           config_.field_count, config_.key_field);
}

void ExternalSortGrouper::SortBatch() {
  ScopedTimeCategory sort(TimeCategory::kSort);
  // The cached normalized prefixes settle the vast majority of comparisons
  // with one integer compare; a tie implies the first 8 key bytes match and
  // only then is the key re-decoded from the pool. Same ordering as a full
  // key compare, so the resulting permutation is unchanged.
  //
  // When every key in the batch has one width ≤ 8 bytes (the common case:
  // fixed-width vertex ids), the prefix is injective — a norm tie IS a key
  // match — so the sort and the group-equality tests run over the entry
  // strip with pure integer comparisons, no pool indirection in the inner
  // loop.
  if (batch_key_size_ >= 0) {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.norm < b.norm; });
  } else {
    std::sort(entries_.begin(), entries_.end(),
              [this](const Entry& a, const Entry& b) {
                if (a.norm != b.norm) return a.norm < b.norm;
                return EntryKey(a).compare(EntryKey(b)) < 0;
              });
  }
  if (config_.metrics != nullptr) {
    config_.metrics->AddCpuOps(entries_.size());
  }
}

Status ExternalSortGrouper::DrainBatchSorted(const TupleEmitFn& fn) {
  SortBatch();
  // Combine/emit drain: group_by when combining, sort otherwise (the drain
  // is then just the tail of the sort kernel).
  ScopedTimeCategory drain(combiner_.valid() ? TimeCategory::kGroupBy
                                             : TimeCategory::kSort);
  const int field_count = config_.field_count;
  const bool norm_decides = batch_key_size_ >= 0;
  const size_t tuples = entries_.size();
  size_t groups = 0;
  std::vector<Slice> fields;
  if (combiner_.valid()) {
    size_t i = 0;
    while (i < entries_.size()) {
      ++groups;
      const Slice key = EntryKey(entries_[i]);
      Slice payload = TupleFieldFromRaw(
          Slice(pool_.data() + entries_[i].offset, entries_[i].size), 2, 1);
      combiner_.init(payload, &acc_);
      size_t j = i + 1;
      while (j < entries_.size() && entries_[j].norm == entries_[i].norm &&
             (norm_decides || EntryKey(entries_[j]) == key)) {
        combiner_.step(
            TupleFieldFromRaw(
                Slice(pool_.data() + entries_[j].offset, entries_[j].size), 2,
                1),
            &acc_);
        ++j;
      }
      const Slice out[2] = {key, Slice(acc_)};
      PREGELIX_RETURN_NOT_OK(fn(out));
      i = j;
    }
  } else {
    for (const Entry& e : entries_) {
      const Slice tuple(pool_.data() + e.offset, e.size);
      fields.clear();
      for (int f = 0; f < field_count; ++f) {
        fields.push_back(TupleFieldFromRaw(tuple, field_count, f));
      }
      PREGELIX_RETURN_NOT_OK(fn(fields));
    }
    groups = tuples;
  }
  if (tuples > 0) {
    // Remembered for the next eager-ship decision: the group/tuple counts
    // fall out of the drain loop for free, so the gate costs no extra pass.
    last_flush_groups_ = groups;
    last_flush_tuples_ = tuples;
  }
  entries_.clear();
  pool_.clear();
  batch_key_size_ = -1;
  return Status::OK();
}

Status ExternalSortGrouper::SpillBatch() {
  TraceSpan span(config_.tracer, "sort.run_generation", trace_cat::kDataflow,
                 config_.worker, config_.metrics);
  span.AddArg("tuples", static_cast<int64_t>(entries_.size()));
  span.AddArg("run", static_cast<int64_t>(next_run_id_));
  if (config_.profile != nullptr) {
    config_.profile->UpdateMemHwm(BatchBytes());
  }
  const std::string path =
      config_.scratch_prefix + "-run-" + std::to_string(next_run_id_++);
  internal_sort::RunWriter writer(config_, path);
  PREGELIX_RETURN_NOT_OK(DrainBatchSorted(
      [&](std::span<const Slice> fields) { return writer.Append(fields); }));
  PREGELIX_RETURN_NOT_OK(writer.Finish());
  if (config_.profile != nullptr) {
    config_.profile->AddSpill(writer.bytes_written());
  }
  run_paths_.push_back(path);
  return Status::OK();
}

Status ExternalSortGrouper::Finish(const TupleEmitFn& emit) {
  PREGELIX_CHECK(!finished_);
  finished_ = true;
  if (config_.profile != nullptr) {
    config_.profile->UpdateMemHwm(BatchBytes());
  }
  if (eager_sink_) {
    // The remainder is one more partial batch for the downstream group-by,
    // which re-combines and applies the final transform once; batches that
    // combined poorly sit in run files and are merged across batches here.
    // (Eager mode requires a transform-free combiner: the run merge below
    // would otherwise finish accumulators the downstream still folds.)
    PREGELIX_CHECK(!combiner_.valid() || !combiner_.finish);
    PREGELIX_RETURN_NOT_OK(DrainBatchSorted(emit));
    if (run_paths_.empty()) return Status::OK();
    std::vector<std::string> runs = std::move(run_paths_);
    run_paths_.clear();
    return internal_sort::MergeRuns(config_, combiner_, std::move(runs), emit);
  }
  if (run_paths_.empty()) {
    // Fully in-memory: a single sorted drain, applying the final transform.
    if (combiner_.valid() && combiner_.finish) {
      std::string finished_acc;
      return DrainBatchSorted([&](std::span<const Slice> fields) {
        finished_acc.assign(fields[1].data(), fields[1].size());
        combiner_.finish(&finished_acc);
        const Slice out[2] = {fields[0], Slice(finished_acc)};
        return emit(out);
      });
    }
    return DrainBatchSorted(emit);
  }
  if (!entries_.empty()) {
    PREGELIX_RETURN_NOT_OK(SpillBatch());
  }
  std::vector<std::string> runs = std::move(run_paths_);
  run_paths_.clear();
  return internal_sort::MergeRuns(config_, combiner_, std::move(runs), emit);
}

// ---------------------------------------------------------------------------
// HashSortGrouper

HashSortGrouper::HashSortGrouper(const SortConfig& config,
                                 GroupCombiner combiner)
    : config_(config), combiner_(std::move(combiner)) {
  PREGELIX_CHECK(combiner_.valid())
      << "HashSort group-by requires combine hooks";
  PREGELIX_CHECK(config_.field_count == 2 && config_.key_field == 0);
}

HashSortGrouper::~HashSortGrouper() {
  for (const std::string& path : run_paths_) {
    DeleteFileIfExists(path);
  }
}

size_t HashSortGrouper::TableBytes() const {
  return key_arena_.capacity() + groups_.capacity() * sizeof(Group) +
         slots_.capacity() * sizeof(uint32_t) +
         static_cast<size_t>(acc_bytes_ > 0 ? acc_bytes_ : 0);
}

void HashSortGrouper::GrowSlots() {
  const size_t n = slots_.empty() ? 64 : slots_.size() * 2;
  slots_.assign(n, 0);
  const size_t mask = n - 1;
  for (size_t g = 0; g < groups_.size(); ++g) {
    size_t s = groups_[g].hash & mask;
    while (slots_[s] != 0) s = (s + 1) & mask;
    slots_[s] = static_cast<uint32_t>(g + 1);
  }
}

Status HashSortGrouper::Add(std::span<const Slice> fields) {
  PREGELIX_CHECK(!finished_);
  const Slice key = fields[0];
  const Slice payload = fields[1];
  ++tuples_since_drain_;
  if (slots_.empty()) GrowSlots();
  const uint64_t h = SliceHash{}(key);
  const size_t mask = slots_.size() - 1;
  size_t s = h & mask;
  while (slots_[s] != 0) {
    Group& g = groups_[slots_[s] - 1];
    if (g.hash == h && GroupKey(g) == key) {
      // Hit path: combiner step into the resident accumulator; no lookup
      // key is materialized and nothing is allocated here. The size delta
      // is signed — a step may shrink the accumulator (e.g. a min-combiner
      // adopting a shorter payload).
      const int64_t before = static_cast<int64_t>(g.acc.size());
      combiner_.step(payload, &g.acc);
      acc_bytes_ += static_cast<int64_t>(g.acc.size()) - before;
      if (config_.metrics != nullptr) config_.metrics->AddCpuOps(1);
      return Status::OK();
    }
    s = (s + 1) & mask;
  }
  // Miss: append the key to the arena and open a new group in slot s.
  Group g;
  g.hash = h;
  g.norm = NormalizedKeyPrefix(key);
  g.key_offset = static_cast<uint32_t>(key_arena_.size());
  g.key_size = static_cast<uint32_t>(key.size());
  combiner_.init(payload, &g.acc);
  acc_bytes_ += static_cast<int64_t>(g.acc.size());
  key_arena_.append(key.data(), key.size());
  groups_.push_back(std::move(g));
  slots_[s] = static_cast<uint32_t>(groups_.size());
  const int64_t key_size = static_cast<int64_t>(key.size());
  if (uniform_key_size_ == -1) {
    uniform_key_size_ = key_size <= 8 ? key_size : -2;
  } else if (uniform_key_size_ != key_size) {
    uniform_key_size_ = -2;
  }
  if (groups_.size() * 4 >= slots_.size() * 3) GrowSlots();
  if (config_.metrics != nullptr) config_.metrics->AddCpuOps(1);
  if (TableBytes() > config_.memory_budget_bytes) {
    if (eager_sink_ &&
        EagerShipProfitable(groups_.size(), tuples_since_drain_)) {
      // Eager shuffle (§19): the table combined heavily — its accumulators
      // already collapsed the duplicates, which evidently cluster locally —
      // so stream the sorted partials downstream instead of parking them in
      // a run file. A poorly-combining table spills as usual: its keys
      // recur across drains, and only the run merge collapses those before
      // they reach the wire. (Unlike the sort grouper, the counts here are
      // live table state, so the current drain decides for itself.)
      PREGELIX_RETURN_NOT_OK(EmitTable(eager_sink_));
    } else {
      PREGELIX_RETURN_NOT_OK(SpillTable());
    }
  }
  return Status::OK();
}

void HashSortGrouper::SortedOrder(std::vector<uint32_t>* order) const {
  ScopedTimeCategory sort(TimeCategory::kSort);
  order->resize(groups_.size());
  if (uniform_key_size_ >= 0) {
    // One key width ≤ 8 bytes across the (deduped) table means the cached
    // norms are pairwise distinct, so the order is fully decided by them.
    // Sort a contiguous (norm, index) strip with the trivial integer
    // comparator — no Group/arena indirection in the inner loop.
    std::vector<std::pair<uint64_t, uint32_t>> strip(groups_.size());
    for (size_t g = 0; g < groups_.size(); ++g) {
      strip[g] = {groups_[g].norm, static_cast<uint32_t>(g)};
    }
    std::sort(strip.begin(), strip.end());
    for (size_t i = 0; i < strip.size(); ++i) (*order)[i] = strip[i].second;
    return;
  }
  std::iota(order->begin(), order->end(), 0u);
  std::sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
    if (groups_[a].norm != groups_[b].norm) {
      return groups_[a].norm < groups_[b].norm;
    }
    return GroupKey(groups_[a]).compare(GroupKey(groups_[b])) < 0;
  });
}

Status HashSortGrouper::SpillTable() {
  if (groups_.empty()) return Status::OK();
  TraceSpan span(config_.tracer, "hashsort.run_generation",
                 trace_cat::kDataflow, config_.worker, config_.metrics);
  span.AddArg("groups", static_cast<int64_t>(groups_.size()));
  span.AddArg("run", static_cast<int64_t>(next_run_id_));
  if (config_.profile != nullptr) {
    config_.profile->UpdateMemHwm(TableBytes());
  }
  std::vector<uint32_t> order;
  SortedOrder(&order);
  if (config_.metrics != nullptr) {
    config_.metrics->AddCpuOps(order.size());
  }
  const std::string path =
      config_.scratch_prefix + "-hrun-" + std::to_string(next_run_id_++);
  internal_sort::RunWriter writer(config_, path);
  for (uint32_t g : order) {
    const Slice out[2] = {GroupKey(groups_[g]), Slice(groups_[g].acc)};
    PREGELIX_RETURN_NOT_OK(writer.Append(out));
  }
  PREGELIX_RETURN_NOT_OK(writer.Finish());
  if (config_.profile != nullptr) {
    config_.profile->AddSpill(writer.bytes_written());
  }
  run_paths_.push_back(path);
  ReleaseTable();
  return Status::OK();
}

void HashSortGrouper::ReleaseTable() {
  // Draining means the table outgrew the budget. TableBytes() charges
  // capacities, so the memory must actually be released here — a cleared
  // table that keeps its high-water capacity would sit at the budget
  // ceiling forever and degrade into draining a one-group batch per Add.
  groups_.clear();
  groups_.shrink_to_fit();
  key_arena_.clear();
  key_arena_.shrink_to_fit();
  slots_.clear();
  slots_.shrink_to_fit();
  acc_bytes_ = 0;
  uniform_key_size_ = -1;
  tuples_since_drain_ = 0;
}

Status HashSortGrouper::EmitTable(const TupleEmitFn& emit) {
  if (groups_.empty()) return Status::OK();
  ScopedTimeCategory group_by(TimeCategory::kGroupBy);
  if (config_.profile != nullptr) {
    config_.profile->UpdateMemHwm(TableBytes());
  }
  std::vector<uint32_t> order;
  SortedOrder(&order);
  if (config_.metrics != nullptr) {
    config_.metrics->AddCpuOps(order.size());
  }
  // Partial accumulators ship as-is — no final transform; the downstream
  // group-by re-combines and finishes each key once.
  for (uint32_t g : order) {
    const Slice out[2] = {GroupKey(groups_[g]), Slice(groups_[g].acc)};
    PREGELIX_RETURN_NOT_OK(emit(out));
  }
  ReleaseTable();
  return Status::OK();
}

Status HashSortGrouper::Finish(const TupleEmitFn& emit) {
  PREGELIX_CHECK(!finished_);
  finished_ = true;
  if (config_.profile != nullptr) {
    config_.profile->UpdateMemHwm(TableBytes());
  }
  if (eager_sink_) {
    // The remainder streams out as one more partial table; the downstream
    // group-by re-combines and applies the final transform once. Drains
    // that combined poorly sit in run files and are merged across drains
    // here (eager mode requires a transform-free combiner — see the sort
    // grouper's Finish).
    PREGELIX_CHECK(!combiner_.finish);
    PREGELIX_RETURN_NOT_OK(EmitTable(emit));
    if (run_paths_.empty()) return Status::OK();
    std::vector<std::string> runs = std::move(run_paths_);
    run_paths_.clear();
    return internal_sort::MergeRuns(config_, combiner_, std::move(runs), emit);
  }
  if (run_paths_.empty()) {
    ScopedTimeCategory group_by(TimeCategory::kGroupBy);
    std::vector<uint32_t> order;
    SortedOrder(&order);
    std::string acc;
    for (uint32_t g : order) {
      acc.assign(groups_[g].acc.data(), groups_[g].acc.size());
      if (combiner_.finish) combiner_.finish(&acc);
      const Slice out[2] = {GroupKey(groups_[g]), Slice(acc)};
      PREGELIX_RETURN_NOT_OK(emit(out));
    }
    groups_.clear();
    key_arena_.clear();
    std::fill(slots_.begin(), slots_.end(), 0);
    acc_bytes_ = 0;
    uniform_key_size_ = -1;
    return Status::OK();
  }
  PREGELIX_RETURN_NOT_OK(SpillTable());
  std::vector<std::string> runs = std::move(run_paths_);
  run_paths_.clear();
  return internal_sort::MergeRuns(config_, combiner_, std::move(runs), emit);
}

// ---------------------------------------------------------------------------
// PreclusteredGrouper

PreclusteredGrouper::PreclusteredGrouper(GroupCombiner combiner,
                                         WorkerMetrics* metrics)
    : combiner_(std::move(combiner)), metrics_(metrics) {
  PREGELIX_CHECK(combiner_.valid());
}

Status PreclusteredGrouper::Add(const Slice& key, const Slice& payload,
                                const TupleEmitFn& emit) {
  if (metrics_ != nullptr) metrics_->AddCpuOps(1);
  if (has_group_ && key == Slice(current_key_)) {
    combiner_.step(payload, &acc_);
    return Status::OK();
  }
  PREGELIX_CHECK(!has_group_ || Slice(current_key_).compare(key) < 0)
      << "preclustered group-by received unsorted input";
  PREGELIX_RETURN_NOT_OK(EmitCurrent(emit));
  current_key_.assign(key.data(), key.size());
  combiner_.init(payload, &acc_);
  has_group_ = true;
  return Status::OK();
}

Status PreclusteredGrouper::EmitCurrent(const TupleEmitFn& emit) {
  if (!has_group_) return Status::OK();
  if (combiner_.finish) combiner_.finish(&acc_);
  const Slice out[2] = {Slice(current_key_), Slice(acc_)};
  return emit(out);
}

Status PreclusteredGrouper::Finish(const TupleEmitFn& emit) {
  Status s = EmitCurrent(emit);
  has_group_ = false;
  return s;
}

}  // namespace pregelix
