#ifndef PREGELIX_DATAFLOW_OPS_SORT_H_
#define PREGELIX_DATAFLOW_OPS_SORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/trace.h"
#include "dataflow/frame.h"
#include "io/run_file.h"

namespace pregelix {

struct OperatorProfile;  // dataflow/plan_profile.h

/// Streaming consumer of sorted output: called once per tuple, in key order.
using TupleEmitFn = std::function<Status(std::span<const Slice> fields)>;

/// Aggregation hooks for message combination (the user's `combine` UDF
/// packaged for the group-by operators). Operates on the payload field of
/// (key, payload) tuples; must be associative and commutative, as required
/// of Pregel combiners. The default combiner (gather into a list) is built
/// by the Pregelix layer on top of these hooks.
struct GroupCombiner {
  /// Starts an accumulator from the first payload of a group.
  std::function<void(const Slice& payload, std::string* acc)> init;
  /// Folds another payload into the accumulator.
  std::function<void(const Slice& payload, std::string* acc)> step;
  /// Optional final transform of the accumulator before emission.
  std::function<void(std::string* acc)> finish;

  bool valid() const { return static_cast<bool>(init) && static_cast<bool>(step); }
};

/// Shared configuration for the sort/group-by family.
struct SortConfig {
  int field_count = 2;
  int key_field = 0;
  size_t memory_budget_bytes = 1 << 20;  ///< in-memory batch / table budget
  size_t frame_size = 32 * 1024;
  std::string scratch_prefix;  ///< run files: <prefix>-run-<i>
  WorkerMetrics* metrics = nullptr;
  Tracer* tracer = nullptr;  ///< optional; spans for run generation vs merge
  int worker = 0;            ///< worker id stamped on sort spans
  int merge_fanin = 16;
  /// Plan-profile slot of the driving operator clone (null = unprofiled).
  /// The groupers record their memory high-water mark at spill/finish
  /// boundaries, each spilled run's byte volume, and foreground ns blocked
  /// on overlapped run-file I/O into it.
  OperatorProfile* profile = nullptr;
  /// Overlap runtime for run-file I/O (DESIGN.md §19): spills go through
  /// the write-behind queue and merge refills are prefetched. Null means
  /// strictly synchronous runs.
  OverlapRuntime* overlap = nullptr;
};

/// External sort with optional early aggregation (paper Section 4
/// "sort-based group-by": the combine function is pushed into both the
/// in-memory sort phase and the merge phase).
///
/// Without a combiner this is the plain external sort operator (used by the
/// data-loading and recovery plans to prepare bulk-load input). With a
/// combiner (field_count must be 2, key_field 0) it is the sort-based
/// group-by: runs are written pre-combined and merging combines across runs,
/// so spill volume shrinks with the combining factor.
class ExternalSortGrouper {
 public:
  ExternalSortGrouper(const SortConfig& config, GroupCombiner combiner = {});
  ~ExternalSortGrouper();

  Status Add(std::span<const Slice> fields);

  /// Sorts/merges everything added and streams it to `emit` in key order.
  /// The instance is exhausted afterwards.
  Status Finish(const TupleEmitFn& emit);

  /// Eager shuffle mode (DESIGN.md §19): when a sink is set, a budget
  /// overflow whose previous batch combined heavily (distinct keys at most
  /// half the tuples — duplicates cluster locally, so a cross-batch run
  /// merge would have little left to collapse) drains the sorted,
  /// pre-combined batch straight to the sink instead of spilling a run
  /// file; poorly-combining batches keep spilling so cross-batch
  /// duplicates are still merged before they reach the wire. Finish streams
  /// the remainder (and merges any spilled runs) without the combiner's
  /// final transform — the downstream group-by re-combines the partial
  /// groups and applies the transform once. A key may therefore be emitted
  /// once per drained batch. Must be set before the first Add; Finish must
  /// then be called with this same sink.
  void SetEagerSink(TupleEmitFn sink) { eager_sink_ = std::move(sink); }

  int runs_spilled() const { return static_cast<int>(run_paths_.size()); }

 private:
  Status SpillBatch();
  /// Sorts the in-memory batch, feeds it (combined if configured) to fn,
  /// and records the batch's group/tuple counts for the eager-ship gate.
  Status DrainBatchSorted(const TupleEmitFn& fn);
  /// Sorts entries_ by key (norm-prefix fast path); charges the sort's CPU.
  void SortBatch();
  /// Bytes the in-memory batch charges against memory_budget_bytes: pool
  /// bytes plus the entry array's real footprint (capacity, not size).
  size_t BatchBytes() const;

  SortConfig config_;
  GroupCombiner combiner_;

  // In-memory batch: raw tuple bytes in a pool, one entry per tuple carrying
  // the tuple's (offset, size) plus its normalized key prefix, cached at Add
  // time so the common sort comparison is a single integer compare (the full
  // key is only decoded from the pool on a prefix tie). Sorting permutes the
  // entry array only.
  std::string pool_;
  struct Entry {
    uint64_t norm;  ///< NormalizedKeyPrefix of the key field
    uint32_t offset;
    uint32_t size;
  };
  /// Key field of one batch entry, decoded from the pool.
  Slice EntryKey(const Entry& e) const;
  std::vector<Entry> entries_;
  std::vector<std::string> run_paths_;
  std::string acc_;  ///< reused accumulator buffer for combined drains
  TupleEmitFn eager_sink_;  ///< eager shuffle sink; empty = spill to runs
  /// The last drained batch's size (tuples in, distinct groups out): the
  /// in-batch combining ratio the next eager-ship decision keys off. Falls
  /// out of the drain loop for free; zero tuples = no flush yet, so the
  /// first overflow spills.
  uint64_t last_flush_groups_ = 0;
  uint64_t last_flush_tuples_ = 0;
  /// Key width of the current batch when every key so far has one width
  /// ≤ 8 bytes (the cached norm prefix is then injective and the batch
  /// sort/group loops run on the entry strip alone); -1 = empty batch,
  /// -2 = mixed or long keys.
  int64_t batch_key_size_ = -1;
  uint64_t next_run_id_ = 0;
  bool finished_ = false;
};

/// Hash-based pre-aggregation with sorted spill runs (paper Section 4
/// "HashSort group-by"): groups are absorbed into an in-memory hash table;
/// when the table exceeds its budget it is emptied as one sorted, combined
/// run; the merge phase is shared with the sort-based group-by. Faster than
/// sort-based when the number of distinct keys is small.
///
/// The table is a flat open-addressing index (slot array of group indices)
/// over an insertion-ordered group vector whose keys live in one arena, so
/// the hit path — hash, probe, combiner step into the resident accumulator
/// — performs no heap allocation (fixed-width accumulators stay in the
/// string's inline buffer). Memory is accounted from the real footprint of
/// the arena, the group and slot arrays, and a signed running total of
/// accumulator bytes (a combiner step may shrink its accumulator).
class HashSortGrouper {
 public:
  HashSortGrouper(const SortConfig& config, GroupCombiner combiner);
  ~HashSortGrouper();

  Status Add(std::span<const Slice> fields);
  Status Finish(const TupleEmitFn& emit);

  /// Eager shuffle mode: a budget overflow whose table combined heavily
  /// (groups at most half the tuples absorbed) streams the sorted partial
  /// accumulators to `sink` instead of spilling; poorly-combining tables
  /// keep spilling. See ExternalSortGrouper::SetEagerSink for the full
  /// contract.
  void SetEagerSink(TupleEmitFn sink) { eager_sink_ = std::move(sink); }

  int runs_spilled() const { return static_cast<int>(run_paths_.size()); }

 private:
  struct Group {
    uint64_t hash;        ///< full 64-bit key hash (probe filter)
    uint64_t norm;        ///< NormalizedKeyPrefix, cached for the spill sort
    uint32_t key_offset;  ///< into key_arena_
    uint32_t key_size;
    std::string acc;
  };

  Slice GroupKey(const Group& g) const {
    return Slice(key_arena_.data() + g.key_offset, g.key_size);
  }
  /// Real bytes held by the table against memory_budget_bytes.
  size_t TableBytes() const;
  /// Doubles the slot array and rehashes the group indices into it.
  void GrowSlots();
  /// Sorted-by-key view of groups_ (indices), using the cached norm keys.
  void SortedOrder(std::vector<uint32_t>* order) const;
  Status SpillTable();
  /// Eager drain: sorted (key, partial-acc) stream to `emit`, then release.
  Status EmitTable(const TupleEmitFn& emit);
  /// Frees the table's memory after a spill or eager drain.
  void ReleaseTable();

  SortConfig config_;
  GroupCombiner combiner_;
  std::string key_arena_;        ///< group keys, back to back
  std::vector<Group> groups_;    ///< insertion order
  std::vector<uint32_t> slots_;  ///< open addressing; group index + 1, 0 empty
  int64_t acc_bytes_ = 0;        ///< signed sum of acc sizes (steps may shrink)
  std::vector<std::string> run_paths_;
  TupleEmitFn eager_sink_;  ///< eager shuffle sink; empty = spill to runs
  /// Tuples absorbed since the table was last drained; with groups_.size()
  /// this is the in-table combining ratio the eager-ship decision keys off.
  uint64_t tuples_since_drain_ = 0;
  /// One key width ≤ 8 across the table makes the cached norms distinct
  /// (keys are deduped), so the spill sort runs over a contiguous
  /// (norm, index) strip; -1 = empty, -2 = mixed or long keys.
  int64_t uniform_key_size_ = -1;
  uint64_t next_run_id_ = 0;
  bool finished_ = false;
};

/// Streaming group-by over already-clustered input (paper Section 4
/// "preclustered group-by"); pairs with the m-to-n partitioning merging
/// connector whose receiver delivers key-sorted tuples.
class PreclusteredGrouper {
 public:
  PreclusteredGrouper(GroupCombiner combiner, WorkerMetrics* metrics);

  /// Input must arrive in non-decreasing key order.
  Status Add(const Slice& key, const Slice& payload, const TupleEmitFn& emit);
  /// Flushes the last group.
  Status Finish(const TupleEmitFn& emit);

 private:
  Status EmitCurrent(const TupleEmitFn& emit);

  GroupCombiner combiner_;
  WorkerMetrics* metrics_;
  // Group-key and accumulator buffers are assigned into, never replaced, so
  // a steady stream of groups reuses their capacity instead of allocating.
  std::string current_key_;
  std::string acc_;
  bool has_group_ = false;
};

namespace internal_sort {

/// K-way merge (with optional combining) over run files written by the
/// groupers; shared by both spilling implementations. Multi-pass when the
/// number of runs exceeds the fan-in.
Status MergeRuns(const SortConfig& config, const GroupCombiner& combiner,
                 std::vector<std::string> run_paths, const TupleEmitFn& emit);

/// Writes tuples to a run file as frames. Helper for the groupers.
class RunWriter {
 public:
  RunWriter(const SortConfig& config, const std::string& path);
  Status Append(std::span<const Slice> fields);
  Status Finish();

  /// Frame bytes written to the run file so far (complete after Finish).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  FrameTupleAppender appender_;
  std::unique_ptr<RunFileWriter> file_;
  std::string path_;
  const SortConfig* config_;
  Status open_status_;
  uint64_t bytes_written_ = 0;
};

}  // namespace internal_sort

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_OPS_SORT_H_
