#ifndef PREGELIX_DATAFLOW_FRAME_H_
#define PREGELIX_DATAFLOW_FRAME_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/slice.h"

namespace pregelix {

/// Binary frame layout (Hyracks style).
///
/// A frame is the unit of data exchange between operators: a byte buffer of
/// nominally `frame_size` bytes holding a batch of tuples. Layout:
///
///   [tuple 0 bytes][tuple 1 bytes]...[free]...[slot n-1]...[slot 0][count]
///
/// where `count` is a u32 in the last 4 bytes, and slot i (u32, growing
/// backwards from the end) holds the END offset of tuple i's bytes. Tuple i
/// occupies [slot(i-1), slot(i)) with slot(-1) = 0.
///
/// A tuple with F fields is encoded as F u32 field-end offsets (relative to
/// the start of the field data area) followed by the concatenated field
/// bytes. Field access is therefore O(1) and zero-copy.
///
/// A single tuple larger than the nominal frame size gets a dedicated
/// oversized frame (web graphs have vertices whose edge lists exceed any
/// fixed frame size).

/// Read-only cursor over the tuples of one frame.
class FrameTupleAccessor {
 public:
  explicit FrameTupleAccessor(int field_count) : field_count_(field_count) {}

  void Reset(Slice frame) { frame_ = frame; }

  int field_count() const { return field_count_; }
  int tuple_count() const;

  /// Byte range of tuple t (offset header + field data).
  Slice tuple_bytes(int t) const;

  /// Zero-copy view of field f of tuple t.
  Slice field(int t, int f) const;

 private:
  uint32_t TupleStart(int t) const;
  uint32_t TupleEnd(int t) const;

  int field_count_;
  Slice frame_;
};

/// Builds frames tuple by tuple.
class FrameTupleAppender {
 public:
  FrameTupleAppender(size_t frame_size, int field_count);

  /// Appends a tuple from field slices. Returns false when the tuple does
  /// not fit in the current non-empty frame (caller should flush and retry).
  /// A tuple too large for an empty frame grows that frame (oversized frame)
  /// and returns true.
  bool Append(std::span<const Slice> fields);

  /// Appends pre-encoded tuple bytes (as returned by
  /// FrameTupleAccessor::tuple_bytes); same fitting rules as Append.
  bool AppendRaw(const Slice& tuple_bytes);

  int tuple_count() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t bytes_used() const { return data_end_ + 4u * count_ + 4u; }

  /// Finalizes and moves the frame buffer out; the appender resets to a
  /// fresh empty frame.
  std::string Take();

  /// Finalizes in place and returns a view of the frame; the appender keeps
  /// ownership, and the next Reset() reuses the same buffer. Preferred on
  /// spill/merge paths where the frame is written straight to a file:
  /// unlike Take(), no allocation and no full-frame zeroing per frame. The
  /// view is valid until the next Append/Reset/Take.
  const std::string& FinalizeView();

  void Reset();

 private:
  bool EnsureRoom(size_t tuple_size);
  void WriteSlot(int index, uint32_t end_offset);
  void Finalize();

  const size_t frame_size_;
  const int field_count_;
  std::string buffer_;
  size_t data_end_ = 0;
  int count_ = 0;
  std::vector<uint32_t> slots_;
};

/// Convenience owned tuple: field storage plus slice views, for ops that
/// need to hold a tuple beyond its frame's lifetime.
class OwnedTuple {
 public:
  OwnedTuple() = default;

  void Clear() {
    storage_.clear();
    ends_.clear();
  }
  void AddField(const Slice& s) {
    storage_.append(s.data(), s.size());
    ends_.push_back(storage_.size());
  }
  int field_count() const { return static_cast<int>(ends_.size()); }
  Slice field(int f) const {
    const size_t start = f == 0 ? 0 : ends_[f - 1];
    return Slice(storage_.data() + start, ends_[f] - start);
  }
  std::vector<Slice> fields() const {
    std::vector<Slice> out;
    out.reserve(ends_.size());
    for (int f = 0; f < field_count(); ++f) out.push_back(field(f));
    return out;
  }

  /// Copies tuple t of an accessor.
  void CopyFrom(const FrameTupleAccessor& acc, int t) {
    Clear();
    for (int f = 0; f < acc.field_count(); ++f) AddField(acc.field(t, f));
  }

 private:
  std::string storage_;
  std::vector<size_t> ends_;
};

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_FRAME_H_
