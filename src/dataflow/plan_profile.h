#ifndef PREGELIX_DATAFLOW_PLAN_PROFILE_H_
#define PREGELIX_DATAFLOW_PLAN_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "dataflow/job.h"

// EXPLAIN ANALYZE for dataflow plans (see DESIGN.md "Plan profiling &
// EXPLAIN").
//
// The executor allocates one OperatorProfile per (operator, partition) clone
// and one EdgeProfile per connector when a PlanProfile is handed to RunJob;
// every counter is a relaxed atomic the task threads (and the sort/group-by
// kernels underneath them) add into. After the job joins, Finalize()
// condenses the live slots into a plain tree mirroring the JobSpec DAG, with
// min/median/max wall time per operator (-> skew factor) and the operator
// chain on the slowest worker (-> critical path).
//
// With profiling off no slots exist: TaskContext::profile is null and every
// instrumentation site is a single pointer test.

namespace pregelix {

/// Live accumulation slot for one (operator, partition) activation. All
/// fields are relaxed atomics: written by the owning task thread plus any
/// kernel it drives, read only after the executor joins the job's threads.
struct OperatorProfile {
  std::atomic<uint64_t> activations{0};
  std::atomic<uint64_t> tuples_in{0};
  std::atomic<uint64_t> tuples_out{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> wall_ns{0};
  std::atomic<uint64_t> mem_hwm_bytes{0};
  std::atomic<uint64_t> spill_count{0};
  std::atomic<uint64_t> spill_bytes{0};
  /// Foreground ns this clone spent blocked on overlapped I/O (waiting for
  /// a prefetched block or for the write-behind queue; DESIGN.md §19). The
  /// overlap the pipeline recovered is wall_ns it did NOT spend here —
  /// `pregelix explain` shows both, so a clone whose io_wait_ns stays near
  /// its pre-overlap I/O time is one the pipeline failed to help.
  std::atomic<uint64_t> io_wait_ns{0};

  void AddWall(uint64_t ns) {
    wall_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddIoWait(uint64_t ns) {
    io_wait_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddSpill(uint64_t bytes) {
    spill_count.fetch_add(1, std::memory_order_relaxed);
    spill_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  /// CAS-max; call at spill/finish boundaries, not per tuple.
  void UpdateMemHwm(uint64_t bytes) {
    uint64_t prev = mem_hwm_bytes.load(std::memory_order_relaxed);
    while (bytes > prev &&
           !mem_hwm_bytes.compare_exchange_weak(prev, bytes,
                                                std::memory_order_relaxed)) {
    }
  }
};

/// Live accumulation slot for one connector. tuples_sent / frames / bytes
/// are metered on the sender side; tuples_recv on the receiver side, so
/// `tuples_sent == tuples_recv` is the tuple-conservation invariant across
/// the exchange (frames may be re-batched by a merging receiver).
struct EdgeProfile {
  std::atomic<uint64_t> tuples_sent{0};
  std::atomic<uint64_t> tuples_recv{0};
  std::atomic<uint64_t> frames{0};
  std::atomic<uint64_t> bytes{0};
};

/// Plain (non-atomic) counter bundle; the unit the finalized tree is built
/// from and merged with.
struct OperatorStats {
  uint64_t activations = 0;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t wall_ns = 0;
  uint64_t mem_hwm_bytes = 0;  ///< merged with max, not sum
  uint64_t spill_count = 0;
  uint64_t spill_bytes = 0;
  uint64_t io_wait_ns = 0;  ///< foreground ns blocked on overlapped I/O

  OperatorStats& operator+=(const OperatorStats& o);
};

OperatorStats SnapshotProfile(const OperatorProfile& p);

/// One partition clone of an operator in the finalized tree.
struct PartitionStats {
  int partition = 0;
  int worker = 0;
  OperatorStats stats;
};

/// One logical operator of the finalized tree.
struct PlanOperatorProfile {
  int op = -1;         ///< operator id in the JobSpec (index into ops())
  std::string name;    ///< physical operator name from the descriptor
  std::string label;   ///< paper-figure label attached by the Pregel layer
  std::vector<PartitionStats> partitions;
  OperatorStats total;
  // Worker-skew attribution: wall-time spread across partition clones.
  uint64_t min_wall_ns = 0;
  uint64_t median_wall_ns = 0;
  uint64_t max_wall_ns = 0;
  double skew = 1.0;  ///< max / median wall (1.0 when degenerate)
  bool on_critical_path = false;
};

/// One connector of the finalized tree.
struct PlanEdgeProfile {
  int src_op = -1;
  int dst_op = -1;
  std::string src_name;
  std::string dst_name;
  ConnectorKind kind = ConnectorKind::kOneToOne;
  uint64_t tuples_sent = 0;
  uint64_t tuples_recv = 0;
  uint64_t frames = 0;
  uint64_t bytes = 0;
};

const char* ConnectorKindName(ConnectorKind kind);

/// Profile of one executed plan (or, after MergeFrom, of a set of executed
/// plans — the cumulative job profile). Lifecycle: InitFromJob before
/// RunJob spawns tasks, slot()/edge_slot() during execution, Finalize()
/// after the join, then read-only.
class PlanProfile {
 public:
  PlanProfile() = default;
  PlanProfile(const PlanProfile&) = delete;
  PlanProfile& operator=(const PlanProfile&) = delete;

  /// Mirrors the JobSpec DAG and allocates the live slots.
  void InitFromJob(const JobSpec& spec,
                   const std::function<int(int)>& worker_of_partition);

  OperatorProfile* slot(int op, int partition) {
    return live_ops_[static_cast<size_t>(op)][static_cast<size_t>(partition)]
        .get();
  }
  EdgeProfile* edge_slot(int connector) {
    return live_edges_[static_cast<size_t>(connector)].get();
  }

  /// Condenses the live slots into the finalized tree and computes the
  /// skew / critical-path attribution. `job_wall_ns` is the end-to-end wall
  /// time of the RunJob call.
  void Finalize(uint64_t job_wall_ns);

  /// Folds another *finalized* profile into this one: operators are matched
  /// by name, connectors by (src, dst, kind); unmatched rows are appended
  /// (e.g. an adaptive job contributes both compute variants). Used for the
  /// cumulative job profile.
  void MergeFrom(const PlanProfile& other);

  /// Paper-name attribution: `label(name)` returns the label for a physical
  /// operator name (empty = keep current).
  void AttachLabels(
      const std::function<std::string(const std::string&)>& label);

  // --- Finalized accessors -------------------------------------------------
  const std::string& job_name() const { return job_name_; }
  const std::vector<PlanOperatorProfile>& ops() const { return ops_; }
  const std::vector<PlanEdgeProfile>& edges() const { return edges_; }
  uint64_t wall_ns() const { return wall_ns_; }
  int supersteps_merged() const { return supersteps_merged_; }
  void set_supersteps_merged(int n) { supersteps_merged_ = n; }
  int slowest_worker() const { return slowest_worker_; }
  uint64_t critical_path_wall_ns() const { return critical_path_wall_ns_; }
  /// Operator indexes (into ops()) of the critical path, source to sink.
  const std::vector<int>& critical_path() const { return critical_path_; }
  std::string CriticalPathString() const;

  /// Sum of connector bytes (the superstep's shuffle volume).
  uint64_t TotalShuffleBytes() const;
  uint64_t TotalSpillCount() const;
  uint64_t TotalSpillBytes() const;

  /// Indexes of the k operators with the largest total wall time.
  std::vector<int> TopByWall(int k) const;

  /// Annotated ASCII plan tree (the `pregelix explain` body).
  void RenderTree(std::ostream& os) const;

  /// Deterministic JSON dump. With `include_timing` false every
  /// non-deterministic field (wall times, skew, critical path) is omitted,
  /// so two runs of the same job produce byte-identical output — the
  /// `--profile-json` contract.
  void WriteJson(std::ostream& os, bool include_timing) const;

 private:
  /// Recomputes totals, wall spread, skew and the critical path from the
  /// per-partition stats (after Finalize or MergeFrom).
  void ComputeDerived();

  std::string job_name_;
  int supersteps_merged_ = 1;
  uint64_t wall_ns_ = 0;

  // Live phase.
  std::vector<std::vector<std::unique_ptr<OperatorProfile>>> live_ops_;
  std::vector<std::unique_ptr<EdgeProfile>> live_edges_;
  std::vector<std::vector<int>> partition_worker_;  ///< [op][partition]

  // Finalized phase.
  std::vector<PlanOperatorProfile> ops_;
  std::vector<PlanEdgeProfile> edges_;
  int slowest_worker_ = -1;
  uint64_t critical_path_wall_ns_ = 0;
  std::vector<int> critical_path_;
  bool finalized_ = false;
};

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_PLAN_PROFILE_H_
