#ifndef PREGELIX_DATAFLOW_CHANNEL_H_
#define PREGELIX_DATAFLOW_CHANNEL_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/run_file.h"

namespace pregelix {

/// Frame transport between operator clones, implementing the two
/// materialization policies of paper Section 4:
///
/// - kPipelined: a bounded in-memory queue; Put blocks when full
///   (backpressure). This is the "fully pipelined" policy.
/// - kSenderMaterialize: Put appends to a local run file on the sender's
///   disk (metered against the sender's worker); the receiver streams the
///   file after the senders close. This is the "sender-side materializing
///   pipelined" policy, which the m-to-n partitioning merging connector
///   needs to avoid the scheduling deadlocks of [Graefe 93] — a merging
///   receiver consumes its inputs selectively, so bounded queues can cycle.
///
/// Multi-producer, single-consumer. `abort` unblocks all waiters when a
/// sibling task fails.
class FrameChannel {
 public:
  enum class Policy { kPipelined, kSenderMaterialize };

  /// `overlap` (nullable) routes spill writes through the write-behind
  /// queue and spill reads through the prefetch pool (DESIGN.md §19). The
  /// channel mutex has rank kChannel=20, below the overlap ranks (22/24),
  /// so enqueueing under the channel lock respects the lock order.
  FrameChannel(size_t capacity_frames, Policy policy, std::string spill_path,
               WorkerMetrics* spill_metrics, std::atomic<bool>* abort,
               int num_senders, OverlapRuntime* overlap = nullptr);

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Sends one frame. Blocks under backpressure (pipelined). Returns Aborted
  /// if the job failed.
  Status Put(std::string frame);

  /// Each sender calls exactly once when done.
  Status CloseSender();

  /// Receives the next frame; false at end-of-stream or abort.
  bool Get(std::string* frame);

  /// Non-OK when the receive side failed (spill read error or injected
  /// "channel.recv" fault). Get returns false in that case — the executor
  /// promotes this status to the job error after joining the tasks, so a
  /// receive failure is never mistaken for a clean end-of-stream.
  Status fault_status() const;

  uint64_t frames_transferred() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return frames_;
  }

 private:
  bool AllSendersDone() const REQUIRES(mutex_) { return senders_open_ == 0; }

  const size_t capacity_;
  const Policy policy_;
  const std::string spill_path_;
  WorkerMetrics* const spill_metrics_;
  std::atomic<bool>* const abort_;
  OverlapRuntime* const overlap_;

  mutable Mutex mutex_{"channel", LockRank::kChannel};
  CondVar cv_;
  std::deque<std::string> queue_ GUARDED_BY(mutex_);
  int senders_open_ GUARDED_BY(mutex_);
  uint64_t frames_ GUARDED_BY(mutex_) = 0;
  Status fault_status_ GUARDED_BY(mutex_);

  // Materializing mode state (single consumer streams the spill file, but
  // writer creation races between producers, so both ride the lock).
  std::unique_ptr<RunFileWriter> spill_writer_ GUARDED_BY(mutex_);
  std::unique_ptr<RunFileReader> spill_reader_ GUARDED_BY(mutex_);
};

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_CHANNEL_H_
