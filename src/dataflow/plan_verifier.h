#ifndef PREGELIX_DATAFLOW_PLAN_VERIFIER_H_
#define PREGELIX_DATAFLOW_PLAN_VERIFIER_H_

#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "dataflow/job.h"

// Static plan verification (DESIGN.md §18).
//
// A pure analysis pass over the JobSpec dataflow IR, run before any task
// thread starts: structural invariants (index validity, acyclicity,
// single-writer inputs, connectivity, partition-count compatibility per
// connector kind), declared physical properties (sortedness-by-key,
// partitioned-by-key, materialized vs pipelined) propagated topologically
// through the connector graph and checked against each consumer's declared
// requirements, and budget feasibility against the byte-accounted memory
// budgets. Violations render as a multi-line, compiler-style diagnostic
// naming the offending operator/edge and the failed rule.
//
// Enforcement points: executor admission (RunJob), every kAuto plan switch
// (PlanOptimizer::ResolveAndPublishPlan — a rejected switch falls back to
// the previous plan), and `pregelix verify` / `explain --verify` offline.
// The pass never touches the tuple path; its cost is O(ops + connectors).

namespace pregelix {

class MetricsRegistry;

/// Budget inputs for the feasibility rule, normally derived from the
/// ClusterConfig the job will run under. worker_ram_bytes == 0 disables the
/// budget rule (specs verified without a target cluster).
struct PlanVerifyOptions {
  size_t worker_ram_bytes = 0;
  size_t frame_size = 32 * 1024;
  size_t channel_capacity_frames = 16;
};

/// The options RunJob admission uses for `config`'s cluster.
PlanVerifyOptions PlanVerifyOptionsFrom(const ClusterConfig& config);

/// One failed rule. `op` / `connector` locate the offender when the rule is
/// operator- resp. edge-scoped (-1 otherwise); `message` is a single
/// human-readable line naming both the location and what failed.
struct PlanViolation {
  std::string rule;
  std::string message;
  int op = -1;
  int connector = -1;
};

struct PlanVerifyResult {
  std::vector<PlanViolation> violations;

  bool ok() const { return violations.empty(); }
  /// "plan verification failed for job '<name>': N error(s)" plus one
  /// "  [rule-id] ..." line per violation; empty string when ok().
  std::string Render(const std::string& job_name) const;
};

/// Runs every rule; never short-circuits, so one pass reports all
/// violations (rules depending on a violated precondition are skipped for
/// the affected op/edge rather than cascading).
PlanVerifyResult VerifyPlan(const JobSpec& spec,
                            const PlanVerifyOptions& opts = {});

/// VerifyPlan rendered into Status::InvalidArgument (OK when clean).
Status VerifyPlanOrError(const JobSpec& spec,
                         const PlanVerifyOptions& opts = {});

/// Meters one verification: bumps `pregelix.verifier.checks` and, per
/// violation, `pregelix.verifier.violations{rule=...}`. No-op on null.
void CountVerification(MetricsRegistry* registry,
                       const PlanVerifyResult& result);

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_PLAN_VERIFIER_H_
