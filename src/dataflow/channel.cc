#include "dataflow/channel.h"

#include <chrono>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/time_ledger.h"

namespace pregelix {

namespace {
constexpr auto kAbortPollInterval = std::chrono::milliseconds(20);
}  // namespace

FrameChannel::FrameChannel(size_t capacity_frames, Policy policy,
                           std::string spill_path,
                           WorkerMetrics* spill_metrics,
                           std::atomic<bool>* abort, int num_senders,
                           OverlapRuntime* overlap)
    : capacity_(capacity_frames == 0 ? 1 : capacity_frames),
      policy_(policy),
      spill_path_(std::move(spill_path)),
      spill_metrics_(spill_metrics),
      abort_(abort),
      overlap_(overlap),
      senders_open_(num_senders) {}

Status FrameChannel::Put(std::string frame) {
  MutexLock lock(&mutex_);
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("channel.send"));
  if (policy_ == Policy::kSenderMaterialize) {
    if (spill_writer_ == nullptr) {
      PREGELIX_RETURN_NOT_OK(RunFileWriter::Open(spill_path_, spill_metrics_,
                                                 overlap_, &spill_writer_));
      // Spill waits are part of the connector transfer, not storage-layer
      // I/O waits, so the ledger files them under shuffle_wait (§20).
      spill_writer_->set_wait_category(TimeCategory::kShuffleWait);
    }
    ++frames_;
    return spill_writer_->AppendBlock(frame);
  }
  {
    // Backpressure park: receiver is behind. Time ledger: shuffle_wait.
    ScopedTimeCategory shuffle_wait(TimeCategory::kShuffleWait);
    while (queue_.size() >= capacity_) {
      if (abort_ != nullptr && abort_->load()) {
        return Status::Aborted("job aborted");
      }
      cv_.WaitFor(&mutex_, kAbortPollInterval);
    }
  }
  queue_.push_back(std::move(frame));
  ++frames_;
  cv_.NotifyAll();
  return Status::OK();
}

Status FrameChannel::CloseSender() {
  MutexLock lock(&mutex_);
  PREGELIX_CHECK(senders_open_ > 0);
  --senders_open_;
  if (senders_open_ == 0 && policy_ == Policy::kSenderMaterialize &&
      spill_writer_ != nullptr) {
    PREGELIX_RETURN_NOT_OK(spill_writer_->Finish());
  }
  cv_.NotifyAll();
  return Status::OK();
}

bool FrameChannel::Get(std::string* frame) {
  MutexLock lock(&mutex_);
  {
    Status injected = fault::MaybeFail("channel.recv");
    if (!injected.ok()) {
      // Get's bool signature cannot carry a Status, so a receive fault is
      // parked on the channel and the job is aborted; RunJob picks the
      // status up after joining so the failure surfaces at the driver.
      fault_status_ = std::move(injected);
      if (abort_ != nullptr) abort_->store(true);
      cv_.NotifyAll();
      return false;
    }
  }
  if (policy_ == Policy::kSenderMaterialize) {
    {
      // Park until every sender closed. Time ledger: shuffle_wait.
      ScopedTimeCategory shuffle_wait(TimeCategory::kShuffleWait);
      while (!AllSendersDone()) {
        if (abort_ != nullptr && abort_->load()) return false;
        cv_.WaitFor(&mutex_, kAbortPollInterval);
      }
    }
    if (spill_writer_ == nullptr) return false;  // nothing was sent
    if (spill_reader_ == nullptr) {
      Status s = RunFileReader::Open(spill_path_, spill_metrics_, overlap_,
                                     &spill_reader_);
      if (!s.ok()) {
        PLOG(Error) << "channel spill open failed: " << s.ToString();
        fault_status_ = std::move(s);
        if (abort_ != nullptr) abort_->store(true);
        return false;
      }
      spill_reader_->set_wait_category(TimeCategory::kShuffleWait);
    }
    Status s = spill_reader_->NextBlock(frame);
    if (s.IsNotFound()) {
      // Stream exhausted: the spill file is single-use scratch.
      spill_reader_.reset();
      spill_writer_.reset();
      DeleteFileIfExists(spill_path_);
      return false;
    }
    if (!s.ok()) {
      fault_status_ = std::move(s);
      if (abort_ != nullptr) abort_->store(true);
    }
    return fault_status_.ok();
  }
  // Receive park (pipelined): the pop itself is trivial, so the whole loop
  // counts as shuffle_wait — virtually all of it is the cv_ wait.
  ScopedTimeCategory shuffle_wait(TimeCategory::kShuffleWait);
  for (;;) {
    if (!queue_.empty()) {
      *frame = std::move(queue_.front());
      queue_.pop_front();
      cv_.NotifyAll();
      return true;
    }
    if (AllSendersDone()) return false;
    if (abort_ != nullptr && abort_->load()) return false;
    cv_.WaitFor(&mutex_, kAbortPollInterval);
  }
}

Status FrameChannel::fault_status() const {
  MutexLock lock(&mutex_);
  return fault_status_;
}

}  // namespace pregelix
