#include "dataflow/frame.h"

#include <cstring>

#include "common/logging.h"
#include "common/serde.h"

namespace pregelix {

// ---------------------------------------------------------------------------
// FrameTupleAccessor

int FrameTupleAccessor::tuple_count() const {
  if (frame_.size() < 4) return 0;
  return static_cast<int>(DecodeFixed32(frame_.data() + frame_.size() - 4));
}

uint32_t FrameTupleAccessor::TupleEnd(int t) const {
  return DecodeFixed32(frame_.data() + frame_.size() - 8 - 4u * t);
}

uint32_t FrameTupleAccessor::TupleStart(int t) const {
  return t == 0 ? 0 : TupleEnd(t - 1);
}

Slice FrameTupleAccessor::tuple_bytes(int t) const {
  const uint32_t start = TupleStart(t);
  return Slice(frame_.data() + start, TupleEnd(t) - start);
}

Slice FrameTupleAccessor::field(int t, int f) const {
  const char* tuple = frame_.data() + TupleStart(t);
  const uint32_t data_start = 4u * field_count_;
  const uint32_t field_start = f == 0 ? 0 : DecodeFixed32(tuple + 4 * (f - 1));
  const uint32_t field_end = DecodeFixed32(tuple + 4 * f);
  return Slice(tuple + data_start + field_start, field_end - field_start);
}

// ---------------------------------------------------------------------------
// FrameTupleAppender

FrameTupleAppender::FrameTupleAppender(size_t frame_size, int field_count)
    : frame_size_(frame_size), field_count_(field_count) {
  Reset();
}

void FrameTupleAppender::Reset() {
  // A buffer of the right size is kept (stale tuple bytes are overwritten
  // by appends, and Finalize zeroes the unused gap); only a moved-out or
  // oversized buffer is reallocated.
  if (buffer_.size() != frame_size_) {
    buffer_.assign(frame_size_, '\0');
  }
  data_end_ = 0;
  count_ = 0;
  slots_.clear();
}

bool FrameTupleAppender::EnsureRoom(size_t tuple_size) {
  // Needed: tuple bytes + one new slot + existing slots + count word.
  const size_t needed = data_end_ + tuple_size + 4u * (count_ + 1) + 4u;
  if (needed <= buffer_.size()) return true;
  if (count_ > 0) return false;  // caller flushes and retries
  // Oversized single tuple: grow this (empty) frame to fit exactly.
  buffer_.assign(tuple_size + 8, '\0');
  return true;
}

bool FrameTupleAppender::Append(std::span<const Slice> fields) {
  PREGELIX_DCHECK(static_cast<int>(fields.size()) == field_count_);
  size_t data_size = 0;
  for (const Slice& f : fields) data_size += f.size();
  const size_t tuple_size = 4u * field_count_ + data_size;
  if (!EnsureRoom(tuple_size)) return false;

  char* out = buffer_.data() + data_end_;
  uint32_t end = 0;
  for (int f = 0; f < field_count_; ++f) {
    end += static_cast<uint32_t>(fields[f].size());
    EncodeFixed32(out + 4 * f, end);
  }
  char* data = out + 4u * field_count_;
  for (const Slice& f : fields) {
    if (!f.empty()) memcpy(data, f.data(), f.size());
    data += f.size();
  }
  data_end_ += tuple_size;
  slots_.push_back(static_cast<uint32_t>(data_end_));
  ++count_;
  return true;
}

bool FrameTupleAppender::AppendRaw(const Slice& tuple_bytes) {
  if (!EnsureRoom(tuple_bytes.size())) return false;
  if (!tuple_bytes.empty()) {
    memcpy(buffer_.data() + data_end_, tuple_bytes.data(), tuple_bytes.size());
  }
  data_end_ += tuple_bytes.size();
  slots_.push_back(static_cast<uint32_t>(data_end_));
  ++count_;
  return true;
}

void FrameTupleAppender::Finalize() {
  char* end = buffer_.data() + buffer_.size();
  // Zero the unused gap between the tuple data and the slot array so a
  // reused buffer produces byte-identical frames to a freshly zeroed one.
  const size_t slots_start = buffer_.size() - 4u - 4u * count_;
  if (slots_start > data_end_) {
    memset(buffer_.data() + data_end_, 0, slots_start - data_end_);
  }
  EncodeFixed32(end - 4, static_cast<uint32_t>(count_));
  for (int i = 0; i < count_; ++i) {
    EncodeFixed32(end - 8 - 4 * i, slots_[i]);
  }
}

std::string FrameTupleAppender::Take() {
  Finalize();
  std::string out = std::move(buffer_);
  Reset();
  return out;
}

const std::string& FrameTupleAppender::FinalizeView() {
  Finalize();
  return buffer_;
}

}  // namespace pregelix
