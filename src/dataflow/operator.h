#ifndef PREGELIX_DATAFLOW_OPERATOR_H_
#define PREGELIX_DATAFLOW_OPERATOR_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "buffer/buffer_cache.h"
#include "common/config.h"
#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"

namespace pregelix {

struct OperatorProfile;  // dataflow/plan_profile.h
class OverlapRuntime;    // io/overlap.h

/// Pull interface for an operator input: a stream of frames fed by a
/// connector (plain queue or merging receiver).
class FrameSource {
 public:
  virtual ~FrameSource() = default;
  /// Fills *frame with the next frame; false at end-of-stream.
  virtual bool Next(std::string* frame) = 0;
};

/// Push interface for an operator output: tuples flow into the connector's
/// sender side, which partitions them into per-destination frames.
class TupleSink {
 public:
  virtual ~TupleSink() = default;
  /// Appends a tuple given as field slices.
  virtual Status Append(std::span<const Slice> fields) = 0;
  /// Flushes buffered frames and signals end-of-stream downstream. The
  /// executor calls this after Operator::Run returns; operators may call it
  /// earlier.
  virtual Status Close() = 0;
};

/// Everything one operator clone sees at runtime (the analog of Hyracks'
/// IHyracksTaskContext). The `runtime_context` is the per-job hook the
/// Pregelix layer uses to reach partition-local state (vertex indexes, Msg
/// run files, the cached GS tuple) — paper Section 5.7 "Runtime Context".
struct TaskContext {
  int partition = 0;
  int worker = 0;
  int num_partitions = 1;
  size_t frame_size = 32 * 1024;
  WorkerMetrics* metrics = nullptr;
  BufferCache* cache = nullptr;
  Tracer* tracer = nullptr;           ///< cluster tracer; never null under RunJob
  MetricsRegistry* registry = nullptr;  ///< cluster registry; never null under RunJob
  std::string scratch_dir;          ///< partition-local scratch directory
  const ClusterConfig* config = nullptr;
  void* runtime_context = nullptr;  ///< job-defined per-cluster state
  /// The cluster's overlap runtime (DESIGN.md §19); null when overlap is
  /// off. Operators pass it to run files / sort spills / the vertex index
  /// to get prefetched reads and write-behind spills.
  OverlapRuntime* overlap = nullptr;
  /// Plan-profile slot of this (operator, partition) clone; null when the
  /// job runs unprofiled. Operators and the kernels they drive add memory
  /// high-water marks and spill volume here.
  OperatorProfile* profile = nullptr;

  std::vector<std::unique_ptr<FrameSource>> inputs;
  std::vector<std::unique_ptr<TupleSink>> outputs;

  FrameSource& input(int i) { return *inputs[i]; }
  TupleSink& output(int i) { return *outputs[i]; }
};

/// One operator clone, executing on one partition.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Run(TaskContext& ctx) = 0;
};

// ---------------------------------------------------------------------------
// Physical properties (static plan verification, DESIGN.md §18).
//
// Declared, not inferred: the plan generator states what each operator
// output *provides* and each input *requires*; dataflow/plan_verifier.h
// propagates the declarations topologically through the connector graph and
// rejects plans whose requirements their inputs do not meet. An undeclared
// stream provides nothing (unsorted, arbitrarily placed) — declarations are
// obligations the operator's implementation must honor.

/// Per-partition tuple-order guarantee of a stream.
enum class Sortedness {
  kUnsorted,     ///< no order guarantee
  kSortedByKey,  ///< non-decreasing raw-byte order on the edge's key field
};

/// How a stream's tuples are placed across partitions.
enum class Partitioning {
  kArbitrary,  ///< no placement guarantee
  kHashByKey,  ///< equal keys share a partition (hash of the raw key bytes)
  kSingleton,  ///< the whole stream lives on a single partition
};

struct StreamProperties {
  Sortedness sorted = Sortedness::kUnsorted;
  Partitioning partitioned = Partitioning::kArbitrary;
};

/// Static shape + property declarations of one logical operator. Port counts
/// of -1 leave the count unconstrained (operators predating the verifier);
/// missing `outputs`/`inputs` entries default to "provides nothing" /
/// "requires nothing".
struct OperatorSignature {
  int num_inputs = -1;
  int num_outputs = -1;
  /// outputs[i]: what output port i provides.
  std::vector<StreamProperties> outputs;
  /// inputs[i]: what input port i requires of its delivered stream.
  std::vector<StreamProperties> inputs;
  /// Peak per-clone working memory the operator plans to pin (bytes; 0 =
  /// negligible). Input to the verifier's budget-feasibility rule.
  size_t memory_bytes = 0;

  StreamProperties output(int i) const {
    return i >= 0 && i < static_cast<int>(outputs.size()) ? outputs[i]
                                                          : StreamProperties{};
  }
  StreamProperties input(int i) const {
    return i >= 0 && i < static_cast<int>(inputs.size()) ? inputs[i]
                                                         : StreamProperties{};
  }
};

/// Factory for operator clones; one descriptor per logical operator in a
/// job specification.
class OperatorDescriptor {
 public:
  virtual ~OperatorDescriptor() = default;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<Operator> Create(int partition) = 0;
  /// Declared shape and physical properties; the default declares nothing.
  virtual OperatorSignature signature() const { return {}; }
};

/// Descriptor wrapping a plain function; the workhorse for plan generation.
class LambdaOperatorDescriptor : public OperatorDescriptor {
 public:
  using Fn = std::function<Status(TaskContext&)>;

  LambdaOperatorDescriptor(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  OperatorSignature signature() const override { return signature_; }

  /// Fluent property declarations (used by the plan builders; see
  /// dataflow/plan_verifier.h).
  LambdaOperatorDescriptor* DeclarePorts(int num_inputs, int num_outputs) {
    signature_.num_inputs = num_inputs;
    signature_.num_outputs = num_outputs;
    if (num_outputs >= 0) signature_.outputs.resize(num_outputs);
    if (num_inputs >= 0) signature_.inputs.resize(num_inputs);
    return this;
  }
  LambdaOperatorDescriptor* DeclareOutput(int port, StreamProperties provides) {
    if (port >= static_cast<int>(signature_.outputs.size())) {
      signature_.outputs.resize(port + 1);
    }
    signature_.outputs[port] = provides;
    return this;
  }
  LambdaOperatorDescriptor* DeclareInput(int port, StreamProperties required) {
    if (port >= static_cast<int>(signature_.inputs.size())) {
      signature_.inputs.resize(port + 1);
    }
    signature_.inputs[port] = required;
    return this;
  }
  LambdaOperatorDescriptor* DeclareMemoryBytes(size_t bytes) {
    signature_.memory_bytes = bytes;
    return this;
  }

  std::unique_ptr<Operator> Create(int partition) override {
    class FnOperator : public Operator {
     public:
      explicit FnOperator(Fn* fn) : fn_(fn) {}
      Status Run(TaskContext& ctx) override { return (*fn_)(ctx); }

     private:
      Fn* fn_;
    };
    return std::make_unique<FnOperator>(&fn_);
  }

 private:
  std::string name_;
  Fn fn_;
  OperatorSignature signature_;
};

/// Reads field `f` out of pre-encoded tuple bytes (the raw format described
/// in frame.h) without a frame.
inline Slice TupleFieldFromRaw(const Slice& tuple, int field_count, int f) {
  const char* base = tuple.data();
  auto end_of = [&](int i) {
    uint32_t v;
    memcpy(&v, base + 4 * i, 4);
    return v;
  };
  const uint32_t start = f == 0 ? 0 : end_of(f - 1);
  return Slice(base + 4u * field_count + start, end_of(f) - start);
}

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_OPERATOR_H_
