#ifndef PREGELIX_DATAFLOW_TUPLE_RUN_H_
#define PREGELIX_DATAFLOW_TUPLE_RUN_H_

#include <memory>
#include <span>
#include <string>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"
#include "dataflow/frame.h"
#include "io/run_file.h"

namespace pregelix {

/// Tuple-granular writer over a frame run file. Used for the materialized
/// relations of a Pregelix job (the per-partition Msg runs, checkpoints,
/// pending-update buffers).
class TupleRunWriter {
 public:
  TupleRunWriter(std::string path, size_t frame_size, int field_count,
                 WorkerMetrics* metrics, OverlapRuntime* overlap = nullptr)
      : path_(std::move(path)),
        metrics_(metrics),
        overlap_(overlap),
        appender_(frame_size, field_count) {}

  Status Append(std::span<const Slice> fields) {
    if (file_ == nullptr) {
      PREGELIX_RETURN_NOT_OK(
          RunFileWriter::Open(path_, metrics_, overlap_, &file_));
    }
    if (!appender_.Append(fields)) {
      PREGELIX_RETURN_NOT_OK(file_->AppendBlock(appender_.FinalizeView()));
      appender_.Reset();
      if (!appender_.Append(fields)) {
        return Status::Internal("tuple cannot fit in an empty frame");
      }
    }
    ++count_;
    return Status::OK();
  }

  Status Finish() {
    if (file_ == nullptr) {
      // Create an empty run so readers see a valid (empty) relation.
      PREGELIX_RETURN_NOT_OK(
          RunFileWriter::Open(path_, metrics_, overlap_, &file_));
    }
    if (!appender_.empty()) {
      PREGELIX_RETURN_NOT_OK(file_->AppendBlock(appender_.FinalizeView()));
      appender_.Reset();
    }
    return file_->Finish();
  }

  uint64_t count() const { return count_; }
  const std::string& path() const { return path_; }
  /// Foreground ns spent blocked on the write-behind queue (DESIGN.md §19).
  uint64_t io_wait_ns() const {
    return file_ != nullptr ? file_->io_wait_ns() : 0;
  }

 private:
  std::string path_;
  WorkerMetrics* metrics_;
  OverlapRuntime* overlap_;
  FrameTupleAppender appender_;
  std::unique_ptr<RunFileWriter> file_;
  uint64_t count_ = 0;
};

/// Tuple-granular cursor over a frame run file.
class TupleRunReader {
 public:
  TupleRunReader(std::string path, int field_count, WorkerMetrics* metrics,
                 OverlapRuntime* overlap = nullptr)
      : path_(std::move(path)),
        accessor_(field_count),
        metrics_(metrics),
        overlap_(overlap) {}

  /// Opens and positions at the first tuple. A missing file yields an empty
  /// (immediately invalid) cursor.
  Status Init() {
    Status s = RunFileReader::Open(path_, metrics_, overlap_, &reader_);
    if (!s.ok()) {
      valid_ = false;
      return Status::OK();
    }
    return Advance();
  }

  bool Valid() const { return valid_; }

  Status Next() {
    ++index_;
    if (index_ >= accessor_.tuple_count()) return Advance();
    return Status::OK();
  }

  Slice field(int f) const { return accessor_.field(index_, f); }

  /// Foreground ns spent blocked waiting for a prefetched frame (§19).
  uint64_t io_wait_ns() const {
    return reader_ != nullptr ? reader_->io_wait_ns() : 0;
  }

 private:
  Status Advance() {
    for (;;) {
      Status s = reader_->NextBlock(&frame_);
      if (s.IsNotFound()) {
        valid_ = false;
        return Status::OK();
      }
      PREGELIX_RETURN_NOT_OK(s);
      accessor_.Reset(Slice(frame_));
      if (accessor_.tuple_count() > 0) {
        index_ = 0;
        valid_ = true;
        return Status::OK();
      }
    }
  }

  std::string path_;
  std::unique_ptr<RunFileReader> reader_;
  std::string frame_;
  FrameTupleAccessor accessor_;
  int index_ = 0;
  bool valid_ = false;
  WorkerMetrics* metrics_;
  OverlapRuntime* overlap_ = nullptr;
};

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_TUPLE_RUN_H_
