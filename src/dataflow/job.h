#ifndef PREGELIX_DATAFLOW_JOB_H_
#define PREGELIX_DATAFLOW_JOB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "dataflow/operator.h"

namespace pregelix {

/// Inter-operator data exchange pattern (paper Section 4 "Connectors").
enum class ConnectorKind {
  kOneToOne,            ///< partition i feeds partition i (sticky/local)
  kMToNPartition,       ///< repartition by key hash, unordered arrival
  kMToNPartitionMerge,  ///< repartition; receiver merges sorted sender runs
  kMToOne,              ///< all partitions feed partition 0 (aggregator)
};

/// Edge of the job DAG.
struct ConnectorSpec {
  int src_op = -1;
  int src_output = 0;
  int dst_op = -1;
  int dst_input = 0;
  ConnectorKind kind = ConnectorKind::kMToNPartition;
  /// Field used for hash routing and for the merge order.
  int key_field = 0;
  /// Tuple width on this edge (needed by the merging receiver).
  int field_count = 2;
  /// Overrides the default policy (pipelined for everything except the
  /// merging connector, which defaults to sender-side materializing; a
  /// pipelined merging connector can deadlock under backpressure, which is
  /// precisely why the paper pairs it with materialization).
  enum class Policy { kDefault, kPipelined, kSenderMaterialize };
  Policy policy = Policy::kDefault;
  /// Custom route function `(key bytes, n) -> partition`; default hash.
  std::function<uint32_t(const Slice&, uint32_t)> partitioner;
  /// Declaration that a custom `partitioner` routes on exactly the raw
  /// bytes of `key_field` (every pair of equal keys lands on the same
  /// partition). Required by the verifier on kMToNPartitionMerge edges,
  /// where routing and merge order must agree on key identity; meaningless
  /// without a custom partitioner.
  bool partitioner_routes_on_key = false;
  /// Verifier escape hatch: acknowledge an explicitly pipelined merging
  /// connector (a deadlock hazard under backpressure — see Policy above) as
  /// intentional. Only for tests/tools that guarantee channel capacity
  /// exceeding the largest sender run.
  bool unsafe_allow_pipelined_merge = false;

  /// Routing and ordering deliberately agree on key identity: Route hashes
  /// the *raw key bytes*, and the sort/merge path orders by those same raw
  /// bytes (NormalizedKeyPrefix is just the first 8 bytes as a big-endian
  /// word — a comparison *prefix*, with ties broken by full byte compare,
  /// never a different key). So equal keys hash to one partition and
  /// compare equal in the merge; a custom partitioner must preserve exactly
  /// that (see partitioner_routes_on_key).
  uint32_t Route(const Slice& key, uint32_t n) const {
    if (partitioner) return partitioner(key, n);
    return static_cast<uint32_t>(Hash64(key) % n);
  }
};

/// A dataflow job: operators plus connectors, submitted to the executor.
/// The per-operator partition count plays the role of Hyracks' location
/// constraints: the Pregelix plan generator pins join/group-by clones to the
/// Vertex partitions by simply using the same partition count and relying on
/// the executor's fixed partition->worker map (sticky scheduling, paper
/// Section 5.3.4).
class JobSpec {
 public:
  struct OpEntry {
    std::shared_ptr<OperatorDescriptor> descriptor;
    int num_partitions;
  };

  /// Returns the operator id used in ConnectorSpec.
  int AddOperator(std::shared_ptr<OperatorDescriptor> op, int num_partitions) {
    ops_.push_back(OpEntry{std::move(op), num_partitions});
    return static_cast<int>(ops_.size()) - 1;
  }

  void Connect(ConnectorSpec spec) {
    PREGELIX_CHECK(spec.src_op >= 0 &&
                   spec.src_op < static_cast<int>(ops_.size()));
    PREGELIX_CHECK(spec.dst_op >= 0 &&
                   spec.dst_op < static_cast<int>(ops_.size()));
    PREGELIX_CHECK(spec.src_output >= 0 && spec.dst_input >= 0);
    // The key must name a field the edge actually carries; the merging
    // receiver and the hash router both index fields by it.
    PREGELIX_CHECK(spec.key_field >= 0 &&
                   spec.field_count >= spec.key_field + 1);
    connectors_.push_back(std::move(spec));
  }

  const std::vector<OpEntry>& ops() const { return ops_; }
  const std::vector<ConnectorSpec>& connectors() const { return connectors_; }

  /// Descriptive name for logs.
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

 private:
  std::string name_ = "job";
  std::vector<OpEntry> ops_;
  std::vector<ConnectorSpec> connectors_;
};

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_JOB_H_
