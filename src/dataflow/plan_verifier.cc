#include "dataflow/plan_verifier.h"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics_registry.h"

namespace pregelix {
namespace {

const char* KindName(ConnectorKind kind) {
  switch (kind) {
    case ConnectorKind::kOneToOne:
      return "kOneToOne";
    case ConnectorKind::kMToNPartition:
      return "kMToNPartition";
    case ConnectorKind::kMToNPartitionMerge:
      return "kMToNPartitionMerge";
    case ConnectorKind::kMToOne:
      return "kMToOne";
  }
  return "?";
}

/// "compute-msgs(op 1)"; tolerates out-of-range ids (the rule reporting
/// them still needs a name).
std::string OpRef(const JobSpec& spec, int op) {
  if (op < 0 || op >= static_cast<int>(spec.ops().size())) {
    return "<invalid>(op " + std::to_string(op) + ")";
  }
  return spec.ops()[op].descriptor->name() + "(op " + std::to_string(op) + ")";
}

/// "connector #0 [kMToNPartitionMerge] gen(op 0, output 0) -> sink(op 1,
/// input 0)".
std::string EdgeRef(const JobSpec& spec, int ci) {
  const ConnectorSpec& c = spec.connectors()[ci];
  auto op_name = [&spec](int op) -> std::string {
    return op >= 0 && op < static_cast<int>(spec.ops().size())
               ? spec.ops()[op].descriptor->name()
               : "<invalid>";
  };
  std::ostringstream out;
  out << "connector #" << ci << " [" << KindName(c.kind) << "] "
      << op_name(c.src_op) << "(op " << c.src_op << ", output " << c.src_output
      << ") -> " << op_name(c.dst_op) << "(op " << c.dst_op << ", input "
      << c.dst_input << ")";
  return out.str();
}

ConnectorSpec::Policy EffectivePolicy(const ConnectorSpec& c) {
  // Mirrors the executor's resolution: the merging connector defaults to
  // sender-side materialization, everything else to pipelining.
  if (c.policy != ConnectorSpec::Policy::kDefault) return c.policy;
  return c.kind == ConnectorKind::kMToNPartitionMerge
             ? ConnectorSpec::Policy::kSenderMaterialize
             : ConnectorSpec::Policy::kPipelined;
}

/// What the connector delivers to each receiving clone, given what the
/// source output provides per sending clone.
StreamProperties Delivered(const ConnectorSpec& c, int num_src,
                           const StreamProperties& src) {
  StreamProperties out;
  switch (c.kind) {
    case ConnectorKind::kOneToOne:
      out = src;  // the same stream, partition-local
      break;
    case ConnectorKind::kMToNPartition:
      out.sorted = Sortedness::kUnsorted;  // unordered arrival
      out.partitioned = Partitioning::kHashByKey;
      break;
    case ConnectorKind::kMToNPartitionMerge:
      out.sorted = Sortedness::kSortedByKey;  // the receiver merges runs
      out.partitioned = Partitioning::kHashByKey;
      break;
    case ConnectorKind::kMToOne:
      out.sorted = num_src == 1 ? src.sorted : Sortedness::kUnsorted;
      out.partitioned = Partitioning::kSingleton;
      break;
  }
  return out;
}

bool Satisfies(const StreamProperties& delivered,
               const StreamProperties& required) {
  if (required.sorted == Sortedness::kSortedByKey &&
      delivered.sorted != Sortedness::kSortedByKey) {
    return false;
  }
  if (required.partitioned == Partitioning::kHashByKey &&
      delivered.partitioned == Partitioning::kArbitrary) {
    return false;  // a singleton stream trivially co-locates equal keys
  }
  if (required.partitioned == Partitioning::kSingleton &&
      delivered.partitioned != Partitioning::kSingleton) {
    return false;
  }
  return true;
}

const char* SortednessName(Sortedness s) {
  return s == Sortedness::kSortedByKey ? "sorted-by-key" : "unsorted";
}

const char* PartitioningName(Partitioning p) {
  switch (p) {
    case Partitioning::kArbitrary:
      return "arbitrary";
    case Partitioning::kHashByKey:
      return "hash-by-key";
    case Partitioning::kSingleton:
      return "singleton";
  }
  return "?";
}

class Verifier {
 public:
  Verifier(const JobSpec& spec, const PlanVerifyOptions& opts)
      : spec_(spec), opts_(opts), num_ops_(static_cast<int>(spec.ops().size())) {}

  PlanVerifyResult Run() {
    CheckOperators();
    CheckEdges();
    CheckPorts();
    CheckAcyclicAndConnected();
    if (acyclic_) PropagateProperties();
    CheckBudget();
    return std::move(result_);
  }

 private:
  void Add(const std::string& rule, int op, int connector,
           const std::string& message) {
    result_.violations.push_back(PlanViolation{rule, message, op, connector});
  }

  bool EdgeEndpointsValid(const ConnectorSpec& c) const {
    return c.src_op >= 0 && c.src_op < num_ops_ && c.dst_op >= 0 &&
           c.dst_op < num_ops_;
  }

  void CheckOperators() {
    for (int i = 0; i < num_ops_; ++i) {
      if (spec_.ops()[i].num_partitions < 1) {
        Add("op-partitions", i, -1,
            OpRef(spec_, i) + ": num_partitions is " +
                std::to_string(spec_.ops()[i].num_partitions) +
                "; every operator needs at least 1 partition");
      }
    }
  }

  void CheckEdges() {
    const auto& conns = spec_.connectors();
    for (int ci = 0; ci < static_cast<int>(conns.size()); ++ci) {
      const ConnectorSpec& c = conns[ci];
      if (!EdgeEndpointsValid(c)) {
        Add("edge-endpoints", -1, ci,
            "connector #" + std::to_string(ci) + ": operator id out of range (src_op=" +
                std::to_string(c.src_op) + ", dst_op=" +
                std::to_string(c.dst_op) + ", ops=" +
                std::to_string(num_ops_) + ")");
        continue;  // every other edge rule needs valid endpoints
      }
      if (c.src_output < 0 || c.dst_input < 0) {
        Add("edge-ports", -1, ci,
            EdgeRef(spec_, ci) + ": negative port index");
      }
      if (c.key_field < 0 || c.field_count < c.key_field + 1) {
        Add("edge-key-field", -1, ci,
            EdgeRef(spec_, ci) + ": key_field " + std::to_string(c.key_field) +
                " is not a field of a " + std::to_string(c.field_count) +
                "-field tuple (need field_count >= key_field + 1)");
      }
      const int src_parts = spec_.ops()[c.src_op].num_partitions;
      const int dst_parts = spec_.ops()[c.dst_op].num_partitions;
      if (c.kind == ConnectorKind::kOneToOne && src_parts != dst_parts) {
        Add("partition-one-to-one", -1, ci,
            EdgeRef(spec_, ci) + ": kOneToOne needs equal partition counts, got " +
                std::to_string(src_parts) + " -> " + std::to_string(dst_parts));
      }
      if (c.kind == ConnectorKind::kMToOne && dst_parts != 1) {
        Add("partition-m-to-one", -1, ci,
            EdgeRef(spec_, ci) + ": kMToOne gathers into exactly 1 dst partition, got " +
                std::to_string(dst_parts));
      }
      if (c.kind == ConnectorKind::kMToNPartitionMerge) {
        if (EffectivePolicy(c) == ConnectorSpec::Policy::kPipelined &&
            src_parts > 1 && !c.unsafe_allow_pipelined_merge) {
          Add("merge-pipelined-deadlock", -1, ci,
              EdgeRef(spec_, ci) +
                  ": pipelined merging connector with " +
                  std::to_string(src_parts) +
                  " senders is a deadlock hazard under backpressure; use "
                  "Policy::kSenderMaterialize (or acknowledge with "
                  "unsafe_allow_pipelined_merge)");
        }
        if (c.partitioner && !c.partitioner_routes_on_key) {
          Add("merge-partitioner-key", -1, ci,
              EdgeRef(spec_, ci) +
                  ": custom partitioner on a merging connector must declare "
                  "partitioner_routes_on_key (routing and merge order must "
                  "agree on the raw bytes of key_field " +
                  std::to_string(c.key_field) + ")");
        }
      }
    }
  }

  void CheckPorts() {
    // Per operator: connected input/output port indices must be exactly
    // 0..k-1, each used once (the executor binds ports by sorted position,
    // so a gap or a duplicate silently misbinds), and must match the
    // declared port counts when the operator declares any.
    std::vector<std::map<int, std::vector<int>>> in_ports(num_ops_);
    std::vector<std::map<int, std::vector<int>>> out_ports(num_ops_);
    const auto& conns = spec_.connectors();
    for (int ci = 0; ci < static_cast<int>(conns.size()); ++ci) {
      const ConnectorSpec& c = conns[ci];
      if (!EdgeEndpointsValid(c) || c.src_output < 0 || c.dst_input < 0) {
        continue;
      }
      out_ports[c.src_op][c.src_output].push_back(ci);
      in_ports[c.dst_op][c.dst_input].push_back(ci);
    }
    for (int i = 0; i < num_ops_; ++i) {
      const OperatorSignature sig = spec_.ops()[i].descriptor->signature();
      CheckPortSet(i, in_ports[i], sig.num_inputs, /*is_input=*/true);
      CheckPortSet(i, out_ports[i], sig.num_outputs, /*is_input=*/false);
    }
  }

  void CheckPortSet(int op, const std::map<int, std::vector<int>>& ports,
                    int declared, bool is_input) {
    const char* side = is_input ? "input" : "output";
    for (const auto& [port, edges] : ports) {
      if (is_input && edges.size() > 1) {
        Add("input-single-writer", op, edges[1],
            OpRef(spec_, op) + ": input " + std::to_string(port) + " has " +
                std::to_string(edges.size()) +
                " writers (connectors #" + std::to_string(edges[0]) + " and #" +
                std::to_string(edges[1]) + "); every input has one writer");
      } else if (!is_input && edges.size() > 1) {
        Add("port-contiguous", op, edges[1],
            OpRef(spec_, op) + ": output " + std::to_string(port) +
                " feeds " + std::to_string(edges.size()) +
                " connectors; the executor binds one sender per output port");
      }
    }
    // Contiguity: used ports must be 0..k-1.
    int next = 0;
    for (const auto& [port, edges] : ports) {
      if (port != next) {
        Add("port-contiguous", op, edges[0],
            OpRef(spec_, op) + ": " + side + " ports used are not contiguous "
                "from 0 (gap before " + side + " " + std::to_string(port) +
                "); the executor binds ports by position");
        break;
      }
      ++next;
    }
    if (declared >= 0 && static_cast<int>(ports.size()) != declared) {
      Add("port-contiguous", op, -1,
          OpRef(spec_, op) + ": declares " + std::to_string(declared) + " " +
              side + " port(s) but " + std::to_string(ports.size()) +
              " are connected" +
              (static_cast<int>(ports.size()) < declared
                   ? " (dangling " + std::string(side) + " port)"
                   : ""));
    }
  }

  void CheckAcyclicAndConnected() {
    // Kahn's algorithm over valid edges; leftovers have a cycle.
    std::vector<std::vector<int>> succ(num_ops_);
    std::vector<int> indegree(num_ops_, 0);
    std::vector<bool> touched(num_ops_, false);
    for (const ConnectorSpec& c : spec_.connectors()) {
      if (!EdgeEndpointsValid(c)) continue;
      succ[c.src_op].push_back(c.dst_op);
      ++indegree[c.dst_op];
      touched[c.src_op] = touched[c.dst_op] = true;
    }
    std::queue<int> ready;
    for (int i = 0; i < num_ops_; ++i) {
      if (indegree[i] == 0) ready.push(i);
    }
    while (!ready.empty()) {
      const int op = ready.front();
      ready.pop();
      topo_order_.push_back(op);
      for (int next : succ[op]) {
        if (--indegree[next] == 0) ready.push(next);
      }
    }
    if (static_cast<int>(topo_order_.size()) != num_ops_) {
      acyclic_ = false;
      // Walk successors among the leftover ops until one repeats.
      std::vector<bool> leftover(num_ops_, false);
      int start = -1;
      for (int i = 0; i < num_ops_; ++i) {
        if (indegree[i] > 0) {
          leftover[i] = true;
          if (start < 0) start = i;
        }
      }
      std::vector<int> path;
      std::vector<bool> on_path(num_ops_, false);
      int at = start;
      while (!on_path[at]) {
        on_path[at] = true;
        path.push_back(at);
        for (int next : succ[at]) {
          if (leftover[next]) {
            at = next;
            break;
          }
        }
      }
      std::string cycle;
      bool in_cycle = false;
      for (int op : path) {
        if (op == at) in_cycle = true;
        if (!in_cycle) continue;
        cycle += OpRef(spec_, op) + " -> ";
      }
      cycle += OpRef(spec_, at);
      Add("dag-acyclic", at, -1,
          "the connector graph has a cycle: " + cycle);
    }
    // Connectivity: in a multi-operator job, every operator must take part
    // in the dataflow (an untouched op is an orphan: either a dangling
    // producer or a sink nothing reaches).
    if (num_ops_ > 1) {
      for (int i = 0; i < num_ops_; ++i) {
        if (!touched[i]) {
          Add("graph-connected", i, -1,
              OpRef(spec_, i) +
                  ": not connected to the rest of the plan (no connector "
                  "touches it)");
        }
      }
    }
  }

  void PropagateProperties() {
    // delivered[op][input] = properties of the stream arriving at the port,
    // computed in topological order from declared source-output properties.
    const auto& conns = spec_.connectors();
    std::vector<std::map<int, StreamProperties>> delivered(num_ops_);
    std::vector<std::map<int, int>> via_edge(num_ops_);
    std::vector<int> order_of(num_ops_, 0);
    for (int i = 0; i < static_cast<int>(topo_order_.size()); ++i) {
      order_of[topo_order_[i]] = i;
    }
    std::vector<int> edge_order(conns.size());
    for (int ci = 0; ci < static_cast<int>(conns.size()); ++ci) {
      edge_order[ci] = ci;
    }
    std::sort(edge_order.begin(), edge_order.end(), [&](int a, int b) {
      return order_of[conns[a].src_op] < order_of[conns[b].src_op];
    });
    for (int ci : edge_order) {
      const ConnectorSpec& c = conns[ci];
      if (!EdgeEndpointsValid(c)) continue;
      const OperatorSignature src_sig =
          spec_.ops()[c.src_op].descriptor->signature();
      const StreamProperties provided = src_sig.output(c.src_output);
      if (c.kind == ConnectorKind::kMToNPartitionMerge &&
          provided.sorted != Sortedness::kSortedByKey) {
        Add("merge-sorted-input", -1, ci,
            EdgeRef(spec_, ci) +
                ": kMToNPartitionMerge merges sorted sender runs, but the "
                "source output declares " +
                SortednessName(provided.sorted) +
                " (declare Sortedness::kSortedByKey on the output, or use "
                "kMToNPartition)");
      }
      const int src_parts = spec_.ops()[c.src_op].num_partitions;
      delivered[c.dst_op][c.dst_input] = Delivered(c, src_parts, provided);
      via_edge[c.dst_op][c.dst_input] = ci;
    }
    for (int op = 0; op < num_ops_; ++op) {
      const OperatorSignature sig = spec_.ops()[op].descriptor->signature();
      for (int port = 0; port < static_cast<int>(sig.inputs.size()); ++port) {
        const StreamProperties required = sig.inputs[port];
        auto it = delivered[op].find(port);
        if (it == delivered[op].end()) continue;  // port rules report gaps
        if (!Satisfies(it->second, required)) {
          const int ci = via_edge[op][port];
          Add("input-requirements", op, ci,
              OpRef(spec_, op) + ": input " + std::to_string(port) +
                  " requires {" + SortednessName(required.sorted) + ", " +
                  PartitioningName(required.partitioned) + "} but " +
                  EdgeRef(spec_, ci) + " delivers {" +
                  SortednessName(it->second.sorted) + ", " +
                  PartitioningName(it->second.partitioned) + "}");
        }
      }
    }
  }

  void CheckBudget() {
    if (opts_.worker_ram_bytes == 0) return;
    // The engine is out-of-core: sort/group-by operators spill when their
    // byte-accounted budget fills, so an *oversubscribed* worker degrades
    // gracefully rather than failing. What cannot work is a single clone
    // whose declared working set — its budget plus the frames its merging
    // inputs pin (one read frame per sender run, held for the whole merge)
    // — exceeds the machine. That is a configuration error, caught here
    // before any task starts.
    std::vector<size_t> pinned_frames(num_ops_, 0);
    std::vector<int> pinned_via(num_ops_, -1);
    const auto& conns = spec_.connectors();
    for (int ci = 0; ci < static_cast<int>(conns.size()); ++ci) {
      const ConnectorSpec& c = conns[ci];
      if (!EdgeEndpointsValid(c)) continue;
      if (c.kind != ConnectorKind::kMToNPartitionMerge) continue;
      const size_t src_parts =
          static_cast<size_t>(spec_.ops()[c.src_op].num_partitions);
      const size_t per_run =
          EffectivePolicy(c) == ConnectorSpec::Policy::kPipelined
              ? opts_.channel_capacity_frames * opts_.frame_size
              : opts_.frame_size;
      pinned_frames[c.dst_op] += src_parts * per_run;
      pinned_via[c.dst_op] = ci;
    }
    for (int i = 0; i < num_ops_; ++i) {
      const OperatorSignature sig = spec_.ops()[i].descriptor->signature();
      const size_t total = sig.memory_bytes + pinned_frames[i];
      if (total > opts_.worker_ram_bytes) {
        Add("budget-feasible", i, pinned_via[i],
            OpRef(spec_, i) + ": one clone needs " + std::to_string(total) +
                " bytes (" + std::to_string(sig.memory_bytes) +
                " declared working budget + " +
                std::to_string(pinned_frames[i]) +
                " merge-receive frames) but worker_ram_bytes is " +
                std::to_string(opts_.worker_ram_bytes) +
                "; shrink the declared budget or give the workers more RAM");
      }
    }
  }

  const JobSpec& spec_;
  const PlanVerifyOptions& opts_;
  const int num_ops_;
  PlanVerifyResult result_;
  std::vector<int> topo_order_;
  bool acyclic_ = true;
};

}  // namespace

PlanVerifyOptions PlanVerifyOptionsFrom(const ClusterConfig& config) {
  PlanVerifyOptions opts;
  opts.worker_ram_bytes = config.worker_ram_bytes;
  opts.frame_size = config.frame_size;
  opts.channel_capacity_frames = config.channel_capacity_frames;
  return opts;
}

std::string PlanVerifyResult::Render(const std::string& job_name) const {
  if (violations.empty()) return "";
  std::ostringstream out;
  out << "plan verification failed for job '" << job_name << "': "
      << violations.size() << " error(s)";
  for (const PlanViolation& v : violations) {
    out << "\n  [" << v.rule << "] " << v.message;
  }
  return out.str();
}

PlanVerifyResult VerifyPlan(const JobSpec& spec,
                            const PlanVerifyOptions& opts) {
  return Verifier(spec, opts).Run();
}

Status VerifyPlanOrError(const JobSpec& spec, const PlanVerifyOptions& opts) {
  PlanVerifyResult result = VerifyPlan(spec, opts);
  if (result.ok()) return Status::OK();
  return Status::InvalidArgument(result.Render(spec.name()));
}

void CountVerification(MetricsRegistry* registry,
                       const PlanVerifyResult& result) {
  if (registry == nullptr) return;
  registry->GetCounter("pregelix.verifier.checks", {})->Increment();
  for (const PlanViolation& v : result.violations) {
    registry->GetCounter("pregelix.verifier.violations", {{"rule", v.rule}})
        ->Increment();
  }
}

}  // namespace pregelix
