#include "dataflow/plan_profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include "common/logging.h"

namespace pregelix {

namespace {

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (uint64_t{1} << 30)) {
    snprintf(buf, sizeof(buf), "%.1f GB",
             static_cast<double>(bytes) / (uint64_t{1} << 30));
  } else if (bytes >= (uint64_t{1} << 20)) {
    snprintf(buf, sizeof(buf), "%.1f MB",
             static_cast<double>(bytes) / (uint64_t{1} << 20));
  } else if (bytes >= 1024) {
    snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(bytes) / 1024);
  } else {
    snprintf(buf, sizeof(buf), "%llu B",
             static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string HumanNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ull) {
    snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ull) {
    snprintf(buf, sizeof(buf), "%.1f us", static_cast<double>(ns) / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%llu ns", static_cast<unsigned long long>(ns));
  }
  return buf;
}

void JsonEscape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const char* ConnectorKindName(ConnectorKind kind) {
  switch (kind) {
    case ConnectorKind::kOneToOne:
      return "1:1";
    case ConnectorKind::kMToNPartition:
      return "m:n-partition";
    case ConnectorKind::kMToNPartitionMerge:
      return "m:n-partition-merge";
    case ConnectorKind::kMToOne:
      return "m:1";
  }
  return "?";
}

OperatorStats& OperatorStats::operator+=(const OperatorStats& o) {
  activations += o.activations;
  tuples_in += o.tuples_in;
  tuples_out += o.tuples_out;
  frames_in += o.frames_in;
  frames_out += o.frames_out;
  bytes_in += o.bytes_in;
  bytes_out += o.bytes_out;
  wall_ns += o.wall_ns;
  mem_hwm_bytes = std::max(mem_hwm_bytes, o.mem_hwm_bytes);
  spill_count += o.spill_count;
  spill_bytes += o.spill_bytes;
  io_wait_ns += o.io_wait_ns;
  return *this;
}

OperatorStats SnapshotProfile(const OperatorProfile& p) {
  OperatorStats s;
  s.activations = p.activations.load(std::memory_order_relaxed);
  s.tuples_in = p.tuples_in.load(std::memory_order_relaxed);
  s.tuples_out = p.tuples_out.load(std::memory_order_relaxed);
  s.frames_in = p.frames_in.load(std::memory_order_relaxed);
  s.frames_out = p.frames_out.load(std::memory_order_relaxed);
  s.bytes_in = p.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = p.bytes_out.load(std::memory_order_relaxed);
  s.wall_ns = p.wall_ns.load(std::memory_order_relaxed);
  s.mem_hwm_bytes = p.mem_hwm_bytes.load(std::memory_order_relaxed);
  s.spill_count = p.spill_count.load(std::memory_order_relaxed);
  s.spill_bytes = p.spill_bytes.load(std::memory_order_relaxed);
  s.io_wait_ns = p.io_wait_ns.load(std::memory_order_relaxed);
  return s;
}

void PlanProfile::InitFromJob(
    const JobSpec& spec, const std::function<int(int)>& worker_of_partition) {
  job_name_ = spec.name();
  ops_.clear();
  edges_.clear();
  live_ops_.clear();
  live_edges_.clear();
  partition_worker_.clear();

  ops_.reserve(spec.ops().size());
  live_ops_.resize(spec.ops().size());
  partition_worker_.resize(spec.ops().size());
  for (size_t oi = 0; oi < spec.ops().size(); ++oi) {
    PlanOperatorProfile op;
    op.op = static_cast<int>(oi);
    op.name = spec.ops()[oi].descriptor->name();
    ops_.push_back(std::move(op));
    const int parts = spec.ops()[oi].num_partitions;
    live_ops_[oi].reserve(static_cast<size_t>(parts));
    partition_worker_[oi].reserve(static_cast<size_t>(parts));
    for (int p = 0; p < parts; ++p) {
      live_ops_[oi].push_back(std::make_unique<OperatorProfile>());
      partition_worker_[oi].push_back(worker_of_partition(p));
    }
  }

  edges_.reserve(spec.connectors().size());
  live_edges_.reserve(spec.connectors().size());
  for (const ConnectorSpec& c : spec.connectors()) {
    PlanEdgeProfile edge;
    edge.src_op = c.src_op;
    edge.dst_op = c.dst_op;
    edge.src_name = ops_[static_cast<size_t>(c.src_op)].name;
    edge.dst_name = ops_[static_cast<size_t>(c.dst_op)].name;
    edge.kind = c.kind;
    edges_.push_back(std::move(edge));
    live_edges_.push_back(std::make_unique<EdgeProfile>());
  }
}

void PlanProfile::Finalize(uint64_t job_wall_ns) {
  PREGELIX_CHECK(!finalized_) << "PlanProfile finalized twice";
  wall_ns_ = job_wall_ns;
  for (size_t oi = 0; oi < live_ops_.size(); ++oi) {
    PlanOperatorProfile& op = ops_[oi];
    op.partitions.reserve(live_ops_[oi].size());
    for (size_t p = 0; p < live_ops_[oi].size(); ++p) {
      PartitionStats ps;
      ps.partition = static_cast<int>(p);
      ps.worker = partition_worker_[oi][p];
      ps.stats = SnapshotProfile(*live_ops_[oi][p]);
      op.partitions.push_back(std::move(ps));
    }
  }
  for (size_t ci = 0; ci < live_edges_.size(); ++ci) {
    const EdgeProfile& live = *live_edges_[ci];
    PlanEdgeProfile& edge = edges_[ci];
    edge.tuples_sent = live.tuples_sent.load(std::memory_order_relaxed);
    edge.tuples_recv = live.tuples_recv.load(std::memory_order_relaxed);
    edge.frames = live.frames.load(std::memory_order_relaxed);
    edge.bytes = live.bytes.load(std::memory_order_relaxed);
  }
  live_ops_.clear();
  live_edges_.clear();
  partition_worker_.clear();
  finalized_ = true;
  ComputeDerived();
}

void PlanProfile::MergeFrom(const PlanProfile& other) {
  PREGELIX_CHECK(other.finalized_) << "merging a non-finalized PlanProfile";
  if (!finalized_) {
    // Empty accumulator adopting its first profile.
    job_name_ = other.job_name_;
    supersteps_merged_ = 0;
    wall_ns_ = 0;
    finalized_ = true;
  }
  for (const PlanOperatorProfile& theirs : other.ops_) {
    PlanOperatorProfile* mine = nullptr;
    for (PlanOperatorProfile& op : ops_) {
      if (op.name == theirs.name) {
        mine = &op;
        break;
      }
    }
    if (mine == nullptr) {
      PlanOperatorProfile copy = theirs;
      copy.op = static_cast<int>(ops_.size());
      ops_.push_back(std::move(copy));
      continue;
    }
    mine->label = mine->label.empty() ? theirs.label : mine->label;
    for (const PartitionStats& ps : theirs.partitions) {
      bool merged = false;
      for (PartitionStats& have : mine->partitions) {
        if (have.partition == ps.partition) {
          have.stats += ps.stats;
          merged = true;
          break;
        }
      }
      if (!merged) mine->partitions.push_back(ps);
    }
  }
  for (const PlanEdgeProfile& theirs : other.edges_) {
    PlanEdgeProfile* mine = nullptr;
    for (PlanEdgeProfile& edge : edges_) {
      if (edge.src_name == theirs.src_name &&
          edge.dst_name == theirs.dst_name && edge.kind == theirs.kind) {
        mine = &edge;
        break;
      }
    }
    if (mine == nullptr) {
      edges_.push_back(theirs);
      continue;
    }
    mine->tuples_sent += theirs.tuples_sent;
    mine->tuples_recv += theirs.tuples_recv;
    mine->frames += theirs.frames;
    mine->bytes += theirs.bytes;
  }
  // Re-anchor edge endpoints: merged-in operators may occupy new indexes.
  std::map<std::string, int> index_of;
  for (size_t i = 0; i < ops_.size(); ++i) {
    index_of.emplace(ops_[i].name, static_cast<int>(i));
    ops_[i].op = static_cast<int>(i);
  }
  for (PlanEdgeProfile& edge : edges_) {
    auto s = index_of.find(edge.src_name);
    auto d = index_of.find(edge.dst_name);
    edge.src_op = s == index_of.end() ? -1 : s->second;
    edge.dst_op = d == index_of.end() ? -1 : d->second;
  }
  wall_ns_ += other.wall_ns_;
  supersteps_merged_ += other.supersteps_merged_;
  ComputeDerived();
}

void PlanProfile::AttachLabels(
    const std::function<std::string(const std::string&)>& label) {
  for (PlanOperatorProfile& op : ops_) {
    std::string l = label(op.name);
    if (!l.empty()) op.label = std::move(l);
  }
}

void PlanProfile::ComputeDerived() {
  // Per-operator rollup and wall spread.
  std::map<int, uint64_t> worker_wall;
  for (PlanOperatorProfile& op : ops_) {
    op.total = OperatorStats{};
    std::vector<uint64_t> walls;
    walls.reserve(op.partitions.size());
    for (const PartitionStats& ps : op.partitions) {
      op.total += ps.stats;
      walls.push_back(ps.stats.wall_ns);
      worker_wall[ps.worker] += ps.stats.wall_ns;
    }
    if (walls.empty()) {
      op.min_wall_ns = op.median_wall_ns = op.max_wall_ns = 0;
      op.skew = 1.0;
      continue;
    }
    std::sort(walls.begin(), walls.end());
    op.min_wall_ns = walls.front();
    op.max_wall_ns = walls.back();
    op.median_wall_ns = walls[walls.size() / 2];
    op.skew = op.median_wall_ns == 0
                  ? 1.0
                  : static_cast<double>(op.max_wall_ns) /
                        static_cast<double>(op.median_wall_ns);
  }

  // Slowest worker: the one whose task clones accumulated the most wall
  // time (ties break toward the smaller id — std::map iterates in order).
  slowest_worker_ = -1;
  uint64_t slowest_wall = 0;
  for (const auto& [worker, wall] : worker_wall) {
    if (slowest_worker_ < 0 || wall > slowest_wall) {
      slowest_worker_ = worker;
      slowest_wall = wall;
    }
  }

  // Critical path: the heaviest operator chain through the DAG, costed by
  // each operator's wall time on the slowest worker (the chain a perfectly
  // parallel run still waits for).
  const size_t n = ops_.size();
  std::vector<uint64_t> cost(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (const PartitionStats& ps : ops_[i].partitions) {
      if (ps.worker == slowest_worker_) cost[i] += ps.stats.wall_ns;
    }
    ops_[i].on_critical_path = false;
  }
  std::vector<std::vector<int>> out_edges(n);
  std::vector<int> indegree(n, 0);
  for (const PlanEdgeProfile& edge : edges_) {
    if (edge.src_op < 0 || edge.dst_op < 0) continue;
    out_edges[static_cast<size_t>(edge.src_op)].push_back(edge.dst_op);
    ++indegree[static_cast<size_t>(edge.dst_op)];
  }
  // Kahn topological order (plan DAGs are acyclic by construction; any
  // cycle just drops out of the path computation).
  std::vector<int> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) order.push_back(static_cast<int>(i));
  }
  for (size_t head = 0; head < order.size(); ++head) {
    for (int next : out_edges[static_cast<size_t>(order[head])]) {
      if (--indegree[static_cast<size_t>(next)] == 0) order.push_back(next);
    }
  }
  std::vector<uint64_t> best(n, 0);
  std::vector<int> pred(n, -1);
  int end = -1;
  uint64_t end_best = 0;
  for (int i : order) {
    const size_t si = static_cast<size_t>(i);
    best[si] += cost[si];
    for (int next : out_edges[si]) {
      const size_t sn = static_cast<size_t>(next);
      if (best[si] > best[sn]) {
        best[sn] = best[si];
        pred[sn] = i;
      }
    }
    if (end < 0 || best[si] > end_best) {
      end = i;
      end_best = best[si];
    }
  }
  critical_path_.clear();
  critical_path_wall_ns_ = end < 0 ? 0 : end_best;
  for (int at = end; at >= 0; at = pred[static_cast<size_t>(at)]) {
    critical_path_.push_back(at);
    ops_[static_cast<size_t>(at)].on_critical_path = true;
  }
  std::reverse(critical_path_.begin(), critical_path_.end());
}

std::string PlanProfile::CriticalPathString() const {
  std::string out;
  for (int i : critical_path_) {
    if (!out.empty()) out += " -> ";
    out += ops_[static_cast<size_t>(i)].name;
  }
  return out;
}

uint64_t PlanProfile::TotalShuffleBytes() const {
  uint64_t total = 0;
  for (const PlanEdgeProfile& edge : edges_) total += edge.bytes;
  return total;
}

uint64_t PlanProfile::TotalSpillCount() const {
  uint64_t total = 0;
  for (const PlanOperatorProfile& op : ops_) total += op.total.spill_count;
  return total;
}

uint64_t PlanProfile::TotalSpillBytes() const {
  uint64_t total = 0;
  for (const PlanOperatorProfile& op : ops_) total += op.total.spill_bytes;
  return total;
}

std::vector<int> PlanProfile::TopByWall(int k) const {
  std::vector<int> idx(ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) idx[i] = static_cast<int>(i);
  std::stable_sort(idx.begin(), idx.end(), [this](int a, int b) {
    return ops_[static_cast<size_t>(a)].total.wall_ns >
           ops_[static_cast<size_t>(b)].total.wall_ns;
  });
  if (static_cast<int>(idx.size()) > k) idx.resize(static_cast<size_t>(k));
  return idx;
}

void PlanProfile::RenderTree(std::ostream& os) const {
  os << "plan " << job_name_;
  if (supersteps_merged_ > 1) {
    os << "  (cumulative over " << supersteps_merged_ << " supersteps)";
  }
  os << "\n  wall " << HumanNs(wall_ns_);
  if (slowest_worker_ >= 0) os << ", slowest worker " << slowest_worker_;
  if (!critical_path_.empty()) {
    os << "\n  critical path [" << HumanNs(critical_path_wall_ns_)
       << "]: " << CriticalPathString();
  }
  os << "\n";

  const size_t n = ops_.size();
  std::vector<std::vector<size_t>> children(n);
  std::vector<int> indegree(n, 0);
  for (size_t ci = 0; ci < edges_.size(); ++ci) {
    const PlanEdgeProfile& edge = edges_[ci];
    if (edge.src_op < 0 || edge.dst_op < 0) continue;
    children[static_cast<size_t>(edge.src_op)].push_back(ci);
    ++indegree[static_cast<size_t>(edge.dst_op)];
  }

  std::vector<bool> printed(n, false);
  auto print_op = [&](size_t i, const std::string& prefix) {
    const PlanOperatorProfile& op = ops_[i];
    os << op.name;
    if (op.on_critical_path) os << " *";
    if (!op.label.empty()) os << "  — " << op.label;
    os << "\n";
    const OperatorStats& t = op.total;
    os << prefix << "    act " << t.activations << " · in " << t.tuples_in
       << " t / " << t.frames_in << " fr / " << HumanBytes(t.bytes_in)
       << " · out " << t.tuples_out << " t / " << t.frames_out << " fr / "
       << HumanBytes(t.bytes_out) << "\n";
    char skew[32];
    snprintf(skew, sizeof(skew), "%.2f", op.skew);
    os << prefix << "    wall " << HumanNs(t.wall_ns) << " (min "
       << HumanNs(op.min_wall_ns) << " / med " << HumanNs(op.median_wall_ns)
       << " / max " << HumanNs(op.max_wall_ns) << " · skew " << skew
       << "x) · mem hwm " << HumanBytes(t.mem_hwm_bytes) << " · spills "
       << t.spill_count;
    if (t.spill_count > 0) os << " (" << HumanBytes(t.spill_bytes) << ")";
    if (t.io_wait_ns > 0) os << " · io wait " << HumanNs(t.io_wait_ns);
    os << "\n";
  };

  std::function<void(size_t, const std::string&)> walk =
      [&](size_t i, const std::string& prefix) {
        printed[i] = true;
        const std::vector<size_t>& kids = children[i];
        for (size_t k = 0; k < kids.size(); ++k) {
          const PlanEdgeProfile& edge = edges_[kids[k]];
          const bool last = k + 1 == kids.size();
          const size_t dst = static_cast<size_t>(edge.dst_op);
          os << prefix << (last ? "└─" : "├─") << "["
             << ConnectorKindName(edge.kind) << " · " << edge.tuples_sent
             << " t · " << edge.frames << " fr · " << HumanBytes(edge.bytes)
             << "]→ ";
          const std::string child_prefix = prefix + (last ? "  " : "│ ");
          if (printed[dst]) {
            os << ops_[dst].name << " (shown above)\n";
            continue;
          }
          print_op(dst, child_prefix);
          walk(dst, child_prefix);
        }
      };

  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] != 0 || printed[i]) continue;
    print_op(i, "");
    walk(i, "");
  }
  // Disconnected leftovers (cycles cannot happen in our plans, but stay
  // total anyway).
  for (size_t i = 0; i < n; ++i) {
    if (printed[i] || indegree[i] == 0) continue;
    print_op(i, "");
    walk(i, "");
  }
}

void PlanProfile::WriteJson(std::ostream& os, bool include_timing) const {
  os << "{\"job\":\"";
  JsonEscape(os, job_name_);
  os << "\",\"supersteps_merged\":" << supersteps_merged_;
  if (include_timing) {
    os << ",\"wall_ns\":" << wall_ns_
       << ",\"slowest_worker\":" << slowest_worker_
       << ",\"critical_path_wall_ns\":" << critical_path_wall_ns_
       << ",\"critical_path\":[";
    for (size_t i = 0; i < critical_path_.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"";
      JsonEscape(os, ops_[static_cast<size_t>(critical_path_[i])].name);
      os << "\"";
    }
    os << "]";
  }
  os << ",\"operators\":[";
  for (size_t i = 0; i < ops_.size(); ++i) {
    const PlanOperatorProfile& op = ops_[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"";
    JsonEscape(os, op.name);
    os << "\",\"label\":\"";
    JsonEscape(os, op.label);
    os << "\"";
    auto stats_json = [&](const OperatorStats& s) {
      os << "\"activations\":" << s.activations
         << ",\"tuples_in\":" << s.tuples_in
         << ",\"tuples_out\":" << s.tuples_out
         << ",\"frames_in\":" << s.frames_in
         << ",\"frames_out\":" << s.frames_out
         << ",\"bytes_in\":" << s.bytes_in << ",\"bytes_out\":" << s.bytes_out
         << ",\"mem_hwm_bytes\":" << s.mem_hwm_bytes
         << ",\"spill_count\":" << s.spill_count
         << ",\"spill_bytes\":" << s.spill_bytes;
      if (include_timing) {
        os << ",\"wall_ns\":" << s.wall_ns
           << ",\"io_wait_ns\":" << s.io_wait_ns;
      }
    };
    os << ",";
    stats_json(op.total);
    if (include_timing) {
      char skew[32];
      snprintf(skew, sizeof(skew), "%.3f", op.skew);
      os << ",\"min_wall_ns\":" << op.min_wall_ns
         << ",\"median_wall_ns\":" << op.median_wall_ns
         << ",\"max_wall_ns\":" << op.max_wall_ns << ",\"skew\":" << skew
         << ",\"on_critical_path\":"
         << (op.on_critical_path ? "true" : "false");
    }
    os << ",\"partitions\":[";
    for (size_t p = 0; p < op.partitions.size(); ++p) {
      const PartitionStats& ps = op.partitions[p];
      if (p > 0) os << ",";
      os << "{\"partition\":" << ps.partition << ",\"worker\":" << ps.worker
         << ",";
      stats_json(ps.stats);
      os << "}";
    }
    os << "]}";
  }
  os << "],\"connectors\":[";
  for (size_t i = 0; i < edges_.size(); ++i) {
    const PlanEdgeProfile& edge = edges_[i];
    if (i > 0) os << ",";
    os << "{\"src\":\"";
    JsonEscape(os, edge.src_name);
    os << "\",\"dst\":\"";
    JsonEscape(os, edge.dst_name);
    os << "\",\"kind\":\"" << ConnectorKindName(edge.kind)
       << "\",\"tuples_sent\":" << edge.tuples_sent
       << ",\"tuples_recv\":" << edge.tuples_recv
       << ",\"frames\":" << edge.frames << ",\"bytes\":" << edge.bytes << "}";
  }
  os << "]}";
}

}  // namespace pregelix
