#include "dataflow/executor.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/metrics_registry.h"
#include "common/temp_dir.h"
#include "common/time_ledger.h"
#include "common/trace.h"
#include "dataflow/channel.h"
#include "dataflow/frame.h"
#include "dataflow/operator.h"
#include "dataflow/plan_verifier.h"

namespace pregelix {

namespace {

/// Plain queue receiver.
class QueueSource : public FrameSource {
 public:
  explicit QueueSource(FrameChannel* channel) : channel_(channel) {}
  bool Next(std::string* frame) override { return channel_->Get(frame); }

 private:
  FrameChannel* channel_;
};

/// Profiling decorator over an operator input: meters frames/bytes/tuples
/// into the consumer's OperatorProfile and the receive side of the
/// connector's EdgeProfile. Only instantiated when the job is profiled.
class ProfilingSource : public FrameSource {
 public:
  ProfilingSource(std::unique_ptr<FrameSource> inner, int field_count,
                  OperatorProfile* op, EdgeProfile* edge)
      : inner_(std::move(inner)),
        accessor_(field_count),
        op_(op),
        edge_(edge) {}

  bool Next(std::string* frame) override {
    if (!inner_->Next(frame)) return false;
    accessor_.Reset(Slice(*frame));
    const uint64_t tuples = static_cast<uint64_t>(accessor_.tuple_count());
    op_->frames_in.fetch_add(1, std::memory_order_relaxed);
    op_->bytes_in.fetch_add(frame->size(), std::memory_order_relaxed);
    op_->tuples_in.fetch_add(tuples, std::memory_order_relaxed);
    edge_->tuples_recv.fetch_add(tuples, std::memory_order_relaxed);
    return true;
  }

 private:
  std::unique_ptr<FrameSource> inner_;
  FrameTupleAccessor accessor_;
  OperatorProfile* op_;
  EdgeProfile* edge_;
};

/// Receiver side of the m-to-n partitioning merging connector: merges the
/// per-sender sorted frame streams into one sorted stream, tuple by tuple
/// (the paper's "priority queue" coordination at the receiver).
class MergingSource : public FrameSource {
 public:
  MergingSource(std::vector<FrameChannel*> channels, int field_count,
                int key_field, size_t frame_size, WorkerMetrics* metrics)
      : channels_(std::move(channels)),
        key_field_(key_field),
        frame_size_(frame_size),
        metrics_(metrics),
        appender_(frame_size, field_count) {
    cursors_.reserve(channels_.size());
    for (size_t i = 0; i < channels_.size(); ++i) {
      cursors_.push_back(Cursor{std::string(), FrameTupleAccessor(field_count),
                                0, false, channels_[i]});
    }
  }

  bool Next(std::string* frame) override {
    if (!primed_) {
      for (Cursor& c : cursors_) Advance(c, /*initial=*/true);
      primed_ = true;
    }
    uint64_t emitted = 0;
    for (;;) {
      int best = -1;
      for (size_t i = 0; i < cursors_.size(); ++i) {
        if (!cursors_[i].valid) continue;
        if (best < 0 || Key(cursors_[i]).compare(Key(cursors_[best])) < 0) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      Cursor& c = cursors_[best];
      const Slice tuple = c.accessor.tuple_bytes(c.index);
      if (!appender_.AppendRaw(tuple)) {
        // Frame full: hand it out; the winning tuple stays for next round.
        *frame = appender_.Take();
        if (metrics_ != nullptr) metrics_->AddCpuOps(emitted);
        return true;
      }
      ++emitted;
      ++c.index;
      if (c.index >= c.accessor.tuple_count()) {
        Advance(c, /*initial=*/false);
      }
    }
    if (metrics_ != nullptr) metrics_->AddCpuOps(emitted);
    if (!appender_.empty()) {
      *frame = appender_.Take();
      return true;
    }
    return false;
  }

 private:
  struct Cursor {
    std::string frame;
    FrameTupleAccessor accessor;
    int index = 0;
    bool valid = false;
    FrameChannel* channel;
  };

  Slice Key(const Cursor& c) const {
    return c.accessor.field(c.index, key_field_);
  }

  void Advance(Cursor& c, bool initial) {
    for (;;) {
      if (!c.channel->Get(&c.frame)) {
        c.valid = false;
        return;
      }
      c.accessor.Reset(Slice(c.frame));
      if (c.accessor.tuple_count() > 0) {
        c.index = 0;
        c.valid = true;
        return;
      }
    }
  }

  std::vector<FrameChannel*> channels_;
  std::vector<Cursor> cursors_;
  int key_field_;
  size_t frame_size_;
  WorkerMetrics* metrics_;
  FrameTupleAppender appender_;
  bool primed_ = false;
};

/// Sender side of every connector: routes tuples to per-destination frames
/// and pushes full frames into the destination channels, metering network
/// bytes for cross-worker hops.
class ConnectorSender : public TupleSink {
 public:
  struct Destination {
    int dst_partition;
    int dst_worker;
    FrameChannel* channel;
  };

  ConnectorSender(const ConnectorSpec* spec, std::vector<Destination> dests,
                  int routing_fanout, int src_worker, size_t frame_size,
                  int field_count, WorkerMetrics* metrics,
                  MetricsRegistry* registry, const std::string& src_op_name,
                  OperatorProfile* op_profile, EdgeProfile* edge_profile)
      : spec_(spec),
        dests_(std::move(dests)),
        routing_fanout_(routing_fanout),
        src_worker_(src_worker),
        metrics_(metrics),
        op_profile_(op_profile),
        edge_profile_(edge_profile) {
    appenders_.reserve(dests_.size());
    for (size_t i = 0; i < dests_.size(); ++i) {
      appenders_.emplace_back(frame_size, field_count);
    }
    if (registry != nullptr) {
      const MetricLabels labels{{"operator", src_op_name},
                                {"worker", std::to_string(src_worker_)}};
      tuples_out_ = registry->GetCounter("pregelix.dataflow.tuples_out", labels);
      frames_out_ = registry->GetCounter("pregelix.dataflow.connector_frames",
                                         labels);
      bytes_out_ = registry->GetCounter("pregelix.dataflow.connector_bytes",
                                        labels);
    }
  }

  Status Append(std::span<const Slice> fields) override {
    PREGELIX_CHECK(!closed_);
    size_t d = 0;
    if (dests_.size() > 1) {
      d = spec_->Route(fields[spec_->key_field],
                       static_cast<uint32_t>(routing_fanout_));
      PREGELIX_DCHECK(d < dests_.size());
    }
    FrameTupleAppender& appender = appenders_[d];
    if (!appender.Append(fields)) {
      PREGELIX_RETURN_NOT_OK(Flush(d));
      PREGELIX_CHECK(appender.Append(fields)) << "tuple cannot fit any frame";
    }
    if (metrics_ != nullptr) metrics_->AddCpuOps(1);
    if (tuples_out_ != nullptr) tuples_out_->Increment();
    if (op_profile_ != nullptr) {
      op_profile_->tuples_out.fetch_add(1, std::memory_order_relaxed);
      edge_profile_->tuples_sent.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  }

  Status Close() override {
    if (closed_) return Status::OK();
    closed_ = true;
    for (size_t d = 0; d < dests_.size(); ++d) {
      PREGELIX_RETURN_NOT_OK(Flush(d));
      PREGELIX_RETURN_NOT_OK(dests_[d].channel->CloseSender());
    }
    return Status::OK();
  }

 private:
  Status Flush(size_t d) {
    if (appenders_[d].empty()) return Status::OK();
    std::string frame = appenders_[d].Take();
    if (metrics_ != nullptr && dests_[d].dst_worker != src_worker_) {
      metrics_->AddNet(frame.size());
    }
    if (frames_out_ != nullptr) {
      frames_out_->Increment();
      bytes_out_->Add(frame.size());
    }
    if (op_profile_ != nullptr) {
      op_profile_->frames_out.fetch_add(1, std::memory_order_relaxed);
      op_profile_->bytes_out.fetch_add(frame.size(),
                                       std::memory_order_relaxed);
      edge_profile_->frames.fetch_add(1, std::memory_order_relaxed);
      edge_profile_->bytes.fetch_add(frame.size(), std::memory_order_relaxed);
    }
    return dests_[d].channel->Put(std::move(frame));
  }

  const ConnectorSpec* spec_;
  std::vector<Destination> dests_;
  int routing_fanout_;
  int src_worker_;
  WorkerMetrics* metrics_;
  Counter* tuples_out_ = nullptr;
  Counter* frames_out_ = nullptr;
  Counter* bytes_out_ = nullptr;
  OperatorProfile* op_profile_;  ///< null when the job runs unprofiled
  EdgeProfile* edge_profile_;    ///< non-null iff op_profile_ is
  std::vector<FrameTupleAppender> appenders_;
  bool closed_ = false;
};

/// All channels of one connector instance.
struct ConnectorChannels {
  // For non-merging kinds: one MPSC channel per destination partition.
  // For the merging kind: one channel per (src, dst) pair, indexed
  // [src * num_dst + dst].
  std::vector<std::unique_ptr<FrameChannel>> channels;
  bool merging = false;
  int num_src = 0;
  int num_dst = 0;

  FrameChannel* at(int src, int dst) const {
    return merging ? channels[src * num_dst + dst].get()
                   : channels[dst].get();
  }
};

}  // namespace

Status RunJob(SimulatedCluster& cluster, const JobSpec& spec,
              void* runtime_context, PlanProfile* profile) {
  const ClusterConfig& config = cluster.config();

  // --- Admission: static plan verification (DESIGN.md §18) ----------------
  // Runs in every build before any channel or task exists; an invalid plan
  // never starts executing. Pure analysis — zero cost on the tuple path.
  {
    const PlanVerifyResult verdict =
        VerifyPlan(spec, PlanVerifyOptionsFrom(config));
    CountVerification(cluster.registry(), verdict);
    if (!verdict.ok()) {
      return Status::InvalidArgument(verdict.Render(spec.name()));
    }
  }

  std::atomic<bool> abort{false};
  const auto job_start = std::chrono::steady_clock::now();
  if (profile != nullptr) {
    profile->InitFromJob(
        spec, [&cluster](int p) { return cluster.worker_of_partition(p); });
  }

  // --- Build channels per connector ---------------------------------------
  std::vector<ConnectorChannels> conn_channels(spec.connectors().size());
  for (size_t ci = 0; ci < spec.connectors().size(); ++ci) {
    const ConnectorSpec& c = spec.connectors()[ci];
    const int num_src = spec.ops()[c.src_op].num_partitions;
    const int num_dst = spec.ops()[c.dst_op].num_partitions;
    ConnectorChannels& cc = conn_channels[ci];
    cc.num_src = num_src;
    cc.num_dst = num_dst;

    FrameChannel::Policy policy;
    switch (c.policy) {
      case ConnectorSpec::Policy::kPipelined:
        policy = FrameChannel::Policy::kPipelined;
        break;
      case ConnectorSpec::Policy::kSenderMaterialize:
        policy = FrameChannel::Policy::kSenderMaterialize;
        break;
      case ConnectorSpec::Policy::kDefault:
        policy = c.kind == ConnectorKind::kMToNPartitionMerge
                     ? FrameChannel::Policy::kSenderMaterialize
                     : FrameChannel::Policy::kPipelined;
        break;
    }

    if (c.kind == ConnectorKind::kMToNPartitionMerge) {
      cc.merging = true;
      cc.channels.resize(static_cast<size_t>(num_src) * num_dst);
      for (int s = 0; s < num_src; ++s) {
        const int src_worker = cluster.worker_of_partition(s);
        for (int d = 0; d < num_dst; ++d) {
          const std::string spill = cluster.worker_dir(src_worker) +
                                    "/conn-" + std::to_string(ci) + "-s" +
                                    std::to_string(s) + "-d" +
                                    std::to_string(d) + "-" +
                                    std::to_string(cluster.NextFileId());
          cc.channels[static_cast<size_t>(s) * num_dst + d] =
              std::make_unique<FrameChannel>(
                  config.channel_capacity_frames, policy, spill,
                  &cluster.metrics(src_worker), &abort, /*num_senders=*/1,
                  cluster.overlap());
        }
      }
    } else {
      if (c.kind == ConnectorKind::kOneToOne) {
        PREGELIX_CHECK(num_src == num_dst)
            << "one-to-one connector requires equal partition counts";
      }
      cc.channels.resize(num_dst);
      for (int d = 0; d < num_dst; ++d) {
        // Non-merging materialization spills on the receiver's worker
        // (multiple senders share the file through the channel lock).
        const int dst_worker = cluster.worker_of_partition(d);
        const std::string spill =
            cluster.worker_dir(dst_worker) + "/conn-" + std::to_string(ci) +
            "-d" + std::to_string(d) + "-" +
            std::to_string(cluster.NextFileId());
        int senders = num_src;
        if (c.kind == ConnectorKind::kOneToOne) senders = 1;
        cc.channels[d] = std::make_unique<FrameChannel>(
            config.channel_capacity_frames, policy, spill,
            &cluster.metrics(dst_worker), &abort, senders,
            cluster.overlap());
      }
    }
  }

  // --- Build tasks ----------------------------------------------------------
  struct Task {
    int op;
    int partition;
    std::unique_ptr<TaskContext> ctx;
    std::unique_ptr<Operator> instance;
  };
  std::vector<Task> tasks;

  for (size_t oi = 0; oi < spec.ops().size(); ++oi) {
    const JobSpec::OpEntry& entry = spec.ops()[oi];
    for (int p = 0; p < entry.num_partitions; ++p) {
      Task task;
      task.op = static_cast<int>(oi);
      task.partition = p;
      auto ctx = std::make_unique<TaskContext>();
      ctx->partition = p;
      ctx->worker = cluster.worker_of_partition(p);
      ctx->num_partitions = entry.num_partitions;
      ctx->frame_size = config.frame_size;
      ctx->metrics = &cluster.metrics(ctx->worker);
      ctx->cache = &cluster.cache(ctx->worker);
      ctx->tracer = cluster.tracer();
      ctx->registry = cluster.registry();
      ctx->scratch_dir = cluster.partition_dir(p);
      PREGELIX_CHECK(EnsureDir(ctx->scratch_dir));
      ctx->config = &config;
      ctx->runtime_context = runtime_context;
      ctx->overlap = cluster.overlap();
      if (profile != nullptr) {
        ctx->profile = profile->slot(static_cast<int>(oi), p);
      }

      // Inputs, ordered by dst_input index.
      std::vector<std::pair<int, std::unique_ptr<FrameSource>>> inputs;
      for (size_t ci = 0; ci < spec.connectors().size(); ++ci) {
        const ConnectorSpec& c = spec.connectors()[ci];
        if (c.dst_op != static_cast<int>(oi)) continue;
        const ConnectorChannels& cc = conn_channels[ci];
        std::unique_ptr<FrameSource> src;
        if (cc.merging) {
          std::vector<FrameChannel*> column;
          column.reserve(cc.num_src);
          for (int s = 0; s < cc.num_src; ++s) {
            column.push_back(cc.at(s, p));
          }
          src = std::make_unique<MergingSource>(
              std::move(column), c.field_count, c.key_field,
              config.frame_size, ctx->metrics);
        } else {
          src = std::make_unique<QueueSource>(cc.at(0, p));
        }
        if (profile != nullptr) {
          src = std::make_unique<ProfilingSource>(
              std::move(src), c.field_count, ctx->profile,
              profile->edge_slot(static_cast<int>(ci)));
        }
        inputs.emplace_back(c.dst_input, std::move(src));
      }
      std::sort(inputs.begin(), inputs.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& [idx, src] : inputs) {
        ctx->inputs.push_back(std::move(src));
      }

      // Outputs, ordered by src_output index.
      std::vector<std::pair<int, std::unique_ptr<TupleSink>>> outputs;
      for (size_t ci = 0; ci < spec.connectors().size(); ++ci) {
        const ConnectorSpec& c = spec.connectors()[ci];
        if (c.src_op != static_cast<int>(oi)) continue;
        const ConnectorChannels& cc = conn_channels[ci];
        std::vector<ConnectorSender::Destination> dests;
        int fanout = cc.num_dst;
        switch (c.kind) {
          case ConnectorKind::kOneToOne:
            dests.push_back({p, cluster.worker_of_partition(p), cc.at(0, p)});
            fanout = 1;
            break;
          case ConnectorKind::kMToOne:
            dests.push_back({0, cluster.worker_of_partition(0), cc.at(0, 0)});
            fanout = 1;
            break;
          case ConnectorKind::kMToNPartition:
          case ConnectorKind::kMToNPartitionMerge:
            for (int d = 0; d < cc.num_dst; ++d) {
              dests.push_back(
                  {d, cluster.worker_of_partition(d), cc.at(p, d)});
            }
            break;
        }
        outputs.emplace_back(
            c.src_output,
            std::make_unique<ConnectorSender>(
                &c, std::move(dests), fanout, ctx->worker, config.frame_size,
                c.field_count, ctx->metrics, ctx->registry,
                entry.descriptor->name(), ctx->profile,
                profile != nullptr ? profile->edge_slot(static_cast<int>(ci))
                                   : nullptr));
      }
      std::sort(outputs.begin(), outputs.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& [idx, sink] : outputs) {
        ctx->outputs.push_back(std::move(sink));
      }

      task.instance = entry.descriptor->Create(p);
      task.ctx = std::move(ctx);
      tasks.push_back(std::move(task));
    }
  }

  // --- Run ------------------------------------------------------------------
  Mutex status_mutex{"executor_status", LockRank::kExecutorStatus};
  Status first_error;
  std::vector<std::thread> threads;
  threads.reserve(tasks.size());
  for (Task& task : tasks) {
    threads.emplace_back([&cluster, &spec, &task, &abort, &status_mutex,
                          &first_error]() {
      // Time ledger (DESIGN.md §20): the whole task thread is attributed,
      // base category compute, labeled with the operator name so the
      // category×operator hierarchy (and the per-operator io_wait family)
      // can be rebuilt from the cells.
      TimeLedger::AttachCurrentThread(task.ctx->worker, TimeCategory::kCompute,
                                      spec.ops()[task.op].descriptor->name());
      Status s;
      {
        // One span per operator activation; carries the worker counter
        // deltas (cpu/disk/net) accrued while the task ran.
        TraceSpan span(task.ctx->tracer,
                       spec.ops()[task.op].descriptor->name(),
                       trace_cat::kOperator, task.ctx->worker,
                       task.ctx->metrics);
        span.AddArg("partition", task.partition);
        if (task.ctx->profile != nullptr) {
          OperatorProfile* prof = task.ctx->profile;
          prof->activations.fetch_add(1, std::memory_order_relaxed);
          const auto t0 = std::chrono::steady_clock::now();
          s = task.instance->Run(*task.ctx);
          prof->AddWall(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()));
        } else {
          s = task.instance->Run(*task.ctx);
        }
      }
      if (s.ok()) {
        // Close outputs (end-of-stream) and drain unread inputs so upstream
        // senders are never left blocked on a full channel.
        for (auto& out : task.ctx->outputs) {
          Status cs = out->Close();
          if (!cs.ok() && s.ok()) s = cs;
        }
        std::string discard;
        for (auto& in : task.ctx->inputs) {
          while (in->Next(&discard)) {
          }
        }
      }
      if (!s.ok()) {
        MutexLock lock(&status_mutex);
        if (first_error.ok()) {
          first_error = Status(s.code(), spec.name() + "/" +
                                             spec.ops()[task.op]
                                                 .descriptor->name() +
                                             "[" +
                                             std::to_string(task.partition) +
                                             "]: " + s.message());
        }
        abort.store(true);
      }
      TimeLedger::DetachCurrentThread();
    });
  }
  {
    // The caller (superstep driver or a nested checkpoint/load run) spends
    // the whole job parked on this join: the superstep barrier.
    ScopedTimeCategory barrier(TimeCategory::kBarrierWait);
    for (std::thread& t : threads) t.join();
  }

  // A failed receive (injected channel.recv fault or spill read error) makes
  // Get return false, which a task cannot distinguish from end-of-stream.
  // The channel parks the real status; surface it as the job error.
  if (first_error.ok()) {
    for (const ConnectorChannels& cc : conn_channels) {
      for (const auto& channel : cc.channels) {
        if (channel == nullptr) continue;
        Status cs = channel->fault_status();
        if (!cs.ok()) {
          first_error = Status(cs.code(), spec.name() + ": " + cs.message());
          break;
        }
      }
      if (!first_error.ok()) break;
    }
  }

  if (profile != nullptr) {
    profile->Finalize(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - job_start)
            .count()));
  }

  return first_error;
}

}  // namespace pregelix
