#include "graph/sampler.h"

#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace pregelix {

Status RandomWalkSample(const InMemoryGraph& input, int64_t target_vertices,
                        uint64_t seed, double restart_probability,
                        InMemoryGraph* output) {
  const int64_t n = input.num_vertices();
  PREGELIX_CHECK(n > 0);
  if (target_vertices >= n) {
    *output = input;
    return Status::OK();
  }
  Random rnd(seed);
  std::unordered_map<int64_t, int64_t> renumber;
  renumber.reserve(target_vertices * 2);
  std::vector<int64_t> visited_order;

  auto visit = [&](int64_t v) {
    auto [it, inserted] =
        renumber.emplace(v, static_cast<int64_t>(renumber.size()));
    if (inserted) visited_order.push_back(v);
    return it->second;
  };

  int64_t current = static_cast<int64_t>(rnd.Uniform(n));
  visit(current);
  uint64_t steps = 0;
  const uint64_t max_steps = static_cast<uint64_t>(target_vertices) * 1000;
  while (static_cast<int64_t>(renumber.size()) < target_vertices &&
         steps < max_steps) {
    ++steps;
    const auto& nbrs = input.adj[current];
    if (nbrs.empty() || rnd.Bernoulli(restart_probability)) {
      current = static_cast<int64_t>(rnd.Uniform(n));
    } else {
      current = nbrs[rnd.Uniform(nbrs.size())];
    }
    visit(current);
  }

  // Induced subgraph, renumbered densely in visit order.
  output->adj.assign(renumber.size(), {});
  for (int64_t old_vid : visited_order) {
    const int64_t new_vid = renumber[old_vid];
    for (int64_t d : input.adj[old_vid]) {
      auto it = renumber.find(d);
      if (it != renumber.end()) {
        output->adj[new_vid].push_back(it->second);
      }
    }
  }
  return Status::OK();
}

Status SampleGraphDir(DistributedFileSystem& dfs, const std::string& src_dir,
                      const std::string& dst_dir, int num_parts,
                      int64_t target_vertices, uint64_t seed) {
  InMemoryGraph input;
  PREGELIX_RETURN_NOT_OK(LoadGraph(dfs, src_dir, &input));
  InMemoryGraph sample;
  PREGELIX_RETURN_NOT_OK(RandomWalkSample(input, target_vertices, seed,
                                          /*restart_probability=*/0.15,
                                          &sample));
  return WriteGraph(dfs, dst_dir, sample, num_parts);
}

}  // namespace pregelix
