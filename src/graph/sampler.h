#ifndef PREGELIX_GRAPH_SAMPLER_H_
#define PREGELIX_GRAPH_SAMPLER_H_

#include <cstdint>

#include "common/status.h"
#include "dfs/dfs.h"
#include "graph/text_io.h"

namespace pregelix {

/// Random-walk graph sampler (paper Section 7.1, footnote 7: "We used a
/// random walk graph sampler built on top of Pregelix to create scaled-down
/// Webmap sample graphs of different sizes").
///
/// Walks with restart from random seeds until `target_vertices` distinct
/// vertices are visited, then keeps the induced subgraph on the visited set
/// and renumbers it densely.
Status RandomWalkSample(const InMemoryGraph& input, int64_t target_vertices,
                        uint64_t seed, double restart_probability,
                        InMemoryGraph* output);

/// Convenience: load, sample, and write the sample as a graph dir.
Status SampleGraphDir(DistributedFileSystem& dfs, const std::string& src_dir,
                      const std::string& dst_dir, int num_parts,
                      int64_t target_vertices, uint64_t seed);

}  // namespace pregelix

#endif  // PREGELIX_GRAPH_SAMPLER_H_
