#ifndef PREGELIX_GRAPH_REF_ALGOS_H_
#define PREGELIX_GRAPH_REF_ALGOS_H_

#include <cstdint>
#include <vector>

#include "graph/text_io.h"

namespace pregelix {

/// Single-threaded reference implementations used to validate the Pregel
/// programs and the baseline engines (property tests compare outputs).

/// Standard PageRank with uniform teleport; dangling mass is redistributed
/// uniformly. Returns one rank per vertex, summing to ~1.
std::vector<double> PageRankRef(const InMemoryGraph& graph, int iterations,
                                double damping = 0.85);

/// Shortest path distances from `source` with unit edge weights
/// (infinity -> -1).
std::vector<double> SsspRef(const InMemoryGraph& graph, int64_t source);

/// Connected components on the undirected interpretation of the graph;
/// returns the minimum vertex id of each vertex's component (the same label
/// Pregel CC converges to on symmetric graphs).
std::vector<int64_t> CcRef(const InMemoryGraph& graph);

/// Vertices reachable from `source` following out-edges.
std::vector<bool> ReachabilityRef(const InMemoryGraph& graph, int64_t source);

/// Global triangle count (each triangle counted once) on the undirected
/// interpretation.
uint64_t TriangleCountRef(const InMemoryGraph& graph);

/// Strongly connected components (Tarjan, iterative); returns the minimum
/// vertex id of each vertex's SCC.
std::vector<int64_t> SccRef(const InMemoryGraph& graph);

}  // namespace pregelix

#endif  // PREGELIX_GRAPH_REF_ALGOS_H_
