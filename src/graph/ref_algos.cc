#include "graph/ref_algos.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <set>

namespace pregelix {

std::vector<double> PageRankRef(const InMemoryGraph& graph, int iterations,
                                double damping) {
  const int64_t n = graph.num_vertices();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (int64_t v = 0; v < n; ++v) {
      if (graph.adj[v].empty()) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(graph.adj[v].size());
      for (int64_t d : graph.adj[v]) next[d] += share;
    }
    const double teleport =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    for (int64_t v = 0; v < n; ++v) {
      next[v] = teleport + damping * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<double> SsspRef(const InMemoryGraph& graph, int64_t source) {
  const int64_t n = graph.num_vertices();
  std::vector<double> dist(n, -1.0);
  if (source < 0 || source >= n) return dist;
  std::deque<int64_t> queue;
  dist[source] = 0.0;
  queue.push_back(source);
  while (!queue.empty()) {
    const int64_t v = queue.front();
    queue.pop_front();
    for (int64_t d : graph.adj[v]) {
      if (dist[d] < 0) {
        dist[d] = dist[v] + 1.0;
        queue.push_back(d);
      }
    }
  }
  return dist;
}

namespace {
int64_t Find(std::vector<int64_t>& parent, int64_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}
}  // namespace

std::vector<int64_t> CcRef(const InMemoryGraph& graph) {
  const int64_t n = graph.num_vertices();
  std::vector<int64_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t d : graph.adj[v]) {
      const int64_t a = Find(parent, v);
      const int64_t b = Find(parent, d);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<int64_t> label(n);
  for (int64_t v = 0; v < n; ++v) label[v] = Find(parent, v);
  return label;
}

std::vector<bool> ReachabilityRef(const InMemoryGraph& graph, int64_t source) {
  const int64_t n = graph.num_vertices();
  std::vector<bool> reach(n, false);
  if (source < 0 || source >= n) return reach;
  std::deque<int64_t> queue;
  reach[source] = true;
  queue.push_back(source);
  while (!queue.empty()) {
    const int64_t v = queue.front();
    queue.pop_front();
    for (int64_t d : graph.adj[v]) {
      if (!reach[d]) {
        reach[d] = true;
        queue.push_back(d);
      }
    }
  }
  return reach;
}

std::vector<int64_t> SccRef(const InMemoryGraph& graph) {
  const int64_t n = graph.num_vertices();
  std::vector<int64_t> index(n, -1), low(n, 0), scc(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int64_t> stack;
  int64_t next_index = 0;

  // Iterative Tarjan: frame = (vertex, next edge position).
  struct Frame {
    int64_t v;
    size_t edge;
  };
  for (int64_t start = 0; start < n; ++start) {
    if (index[start] >= 0) continue;
    std::vector<Frame> frames{{start, 0}};
    index[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const int64_t v = frame.v;
      if (frame.edge < graph.adj[v].size()) {
        const int64_t w = graph.adj[v][frame.edge++];
        if (w < 0 || w >= n) continue;
        if (index[w] < 0) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        if (low[v] == index[v]) {
          // Pop one SCC; label with its minimum vertex id.
          std::vector<int64_t> members;
          for (;;) {
            const int64_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            members.push_back(w);
            if (w == v) break;
          }
          const int64_t label =
              *std::min_element(members.begin(), members.end());
          for (int64_t w : members) scc[w] = label;
        }
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return scc;
}

uint64_t TriangleCountRef(const InMemoryGraph& graph) {
  const int64_t n = graph.num_vertices();
  // Undirected neighbor sets, deduplicated, self-loops dropped.
  std::vector<std::set<int64_t>> nbr(n);
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t d : graph.adj[v]) {
      if (d == v || d < 0 || d >= n) continue;
      nbr[v].insert(d);
      nbr[d].insert(v);
    }
  }
  uint64_t triangles = 0;
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t u : nbr[v]) {
      if (u <= v) continue;
      for (int64_t w : nbr[u]) {
        if (w <= u) continue;
        if (nbr[v].count(w) > 0) ++triangles;
      }
    }
  }
  return triangles;
}

}  // namespace pregelix
