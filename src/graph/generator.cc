#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "graph/text_io.h"

namespace pregelix {

namespace {

/// Samples an out-degree with mean ~avg: exponential body plus a small
/// probability of a 10x hub, truncated.
int64_t SampleDegree(Random& rnd, double avg, int64_t num_vertices) {
  // Exponential body calibrated so E[floor(degree)] with the 1% x8 hubs
  // lands on `avg`.
  const double u = std::max(rnd.NextDouble(), 1e-12);
  double degree = -avg * 0.93 * std::log(u) + 0.5;
  if (rnd.Bernoulli(0.01)) degree *= 8;  // hubs
  int64_t d = static_cast<int64_t>(degree);
  const int64_t cap = std::max<int64_t>(1, num_vertices - 1);
  return std::min(d, std::min<int64_t>(cap, 50000));
}

}  // namespace

Status GenerateWebmapLike(DistributedFileSystem& dfs, const std::string& dir,
                          int num_parts, int64_t num_vertices,
                          double avg_degree, uint64_t seed,
                          GraphStats* stats) {
  PREGELIX_CHECK(num_parts > 0 && num_vertices > 0);
  std::vector<std::unique_ptr<WritableFile>> parts(num_parts);
  for (int i = 0; i < num_parts; ++i) {
    PREGELIX_RETURN_NOT_OK(
        dfs.OpenForWrite(dir + "/part-" + std::to_string(i), &parts[i]));
  }
  Random rnd(seed);
  uint64_t edges = 0;
  std::string line;
  std::vector<int64_t> dests;
  for (int64_t vid = 0; vid < num_vertices; ++vid) {
    const int64_t degree = SampleDegree(rnd, avg_degree, num_vertices);
    dests.clear();
    dests.reserve(degree);
    for (int64_t e = 0; e < degree; ++e) {
      // Skewed popularity: low ids act as the "head" of the crawl. A random
      // permutation-ish mix keeps locality from being an artifact.
      int64_t raw = static_cast<int64_t>(
          rnd.Skewed(static_cast<uint64_t>(num_vertices), 0.8));
      int64_t dst = static_cast<int64_t>(
          (static_cast<uint64_t>(raw) * 2654435761u + vid) %
          static_cast<uint64_t>(num_vertices));
      if (dst == vid) dst = (dst + 1) % num_vertices;
      dests.push_back(dst);
    }
    edges += dests.size();
    line.clear();
    AppendVertexLine(vid, dests, &line);
    const int part = static_cast<int>(HashVid(vid) % num_parts);
    PREGELIX_RETURN_NOT_OK(parts[part]->Append(line));
  }
  uint64_t bytes = 0;
  for (auto& part : parts) {
    bytes += part->size();
    PREGELIX_RETURN_NOT_OK(part->Close());
  }
  if (stats != nullptr) {
    stats->num_vertices = num_vertices;
    stats->num_edges = edges;
    stats->size_bytes = bytes;
  }
  return Status::OK();
}

Status GenerateBtcLike(DistributedFileSystem& dfs, const std::string& dir,
                       int num_parts, int64_t num_vertices, double avg_degree,
                       uint64_t seed, GraphStats* stats) {
  PREGELIX_CHECK(num_parts > 0 && num_vertices > 1);
  InMemoryGraph graph;
  graph.adj.resize(num_vertices);
  Random rnd(seed);

  // Ring lattice for guaranteed connectivity within the copy.
  for (int64_t v = 0; v < num_vertices; ++v) {
    const int64_t next = (v + 1) % num_vertices;
    graph.adj[v].push_back(next);
    graph.adj[next].push_back(v);
  }
  // Mid-range skewed links until the average degree target is met; each
  // undirected edge contributes 2 to the directed edge count. Link offsets
  // are bounded to ~1/64 of the graph, giving the high-diameter,
  // sparse-frontier structure of the real BTC semantic graph (paper
  // Section 7.5: SSSP on BTC "exhibits sparsity of messages").
  const uint64_t target_edges = static_cast<uint64_t>(
      avg_degree * static_cast<double>(num_vertices));
  uint64_t edges = 2ull * static_cast<uint64_t>(num_vertices);
  const uint64_t max_offset =
      std::max<uint64_t>(2, static_cast<uint64_t>(num_vertices) / 64);
  while (edges + 2 <= target_edges) {
    const int64_t u = static_cast<int64_t>(
        rnd.Uniform(static_cast<uint64_t>(num_vertices)));
    const int64_t offset = 2 + static_cast<int64_t>(rnd.Skewed(max_offset, 0.6));
    const int64_t signed_offset = rnd.Bernoulli(0.5) ? offset : -offset;
    const int64_t v =
        ((u + signed_offset) % num_vertices + num_vertices) % num_vertices;
    if (u == v) continue;
    graph.adj[u].push_back(v);
    graph.adj[v].push_back(u);
    edges += 2;
  }
  PREGELIX_RETURN_NOT_OK(WriteGraph(dfs, dir, graph, num_parts));
  if (stats != nullptr) {
    stats->num_vertices = num_vertices;
    stats->num_edges = graph.num_edges();
    stats->size_bytes = dfs.DirSize(dir);
  }
  return Status::OK();
}

Status ScaleUpGraph(DistributedFileSystem& dfs, const std::string& src_dir,
                    const std::string& dst_dir, int num_parts, int factor,
                    GraphStats* stats) {
  PREGELIX_CHECK(factor >= 1);
  // First find the id space of the source.
  int64_t max_vid = -1;
  PREGELIX_RETURN_NOT_OK(ScanGraphDir(
      dfs, src_dir, [&](int64_t vid, const std::vector<int64_t>& dests) {
        max_vid = std::max(max_vid, vid);
        for (int64_t d : dests) max_vid = std::max(max_vid, d);
        return Status::OK();
      }));
  const int64_t stride = max_vid + 1;

  std::vector<std::unique_ptr<WritableFile>> parts(num_parts);
  for (int i = 0; i < num_parts; ++i) {
    PREGELIX_RETURN_NOT_OK(
        dfs.OpenForWrite(dst_dir + "/part-" + std::to_string(i), &parts[i]));
  }
  uint64_t edges = 0;
  int64_t vertices = 0;
  std::string line;
  std::vector<int64_t> renumbered;
  for (int copy = 0; copy < factor; ++copy) {
    const int64_t offset = copy * stride;
    PREGELIX_RETURN_NOT_OK(ScanGraphDir(
        dfs, src_dir, [&](int64_t vid, const std::vector<int64_t>& dests) {
          renumbered.clear();
          for (int64_t d : dests) renumbered.push_back(d + offset);
          line.clear();
          AppendVertexLine(vid + offset, renumbered, &line);
          const int part =
              static_cast<int>(HashVid(vid + offset) % num_parts);
          edges += renumbered.size();
          ++vertices;
          return parts[part]->Append(line);
        }));
  }
  uint64_t bytes = 0;
  for (auto& part : parts) {
    bytes += part->size();
    PREGELIX_RETURN_NOT_OK(part->Close());
  }
  if (stats != nullptr) {
    stats->num_vertices = vertices;
    stats->num_edges = edges;
    stats->size_bytes = bytes;
  }
  return Status::OK();
}

Status MeasureGraph(const DistributedFileSystem& dfs, const std::string& dir,
                    GraphStats* stats) {
  stats->num_vertices = 0;
  stats->num_edges = 0;
  PREGELIX_RETURN_NOT_OK(ScanGraphDir(
      dfs, dir, [&](int64_t vid, const std::vector<int64_t>& dests) {
        ++stats->num_vertices;
        stats->num_edges += dests.size();
        return Status::OK();
      }));
  stats->size_bytes = dfs.DirSize(dir);
  return Status::OK();
}

}  // namespace pregelix
