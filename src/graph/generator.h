#ifndef PREGELIX_GRAPH_GENERATOR_H_
#define PREGELIX_GRAPH_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "dfs/dfs.h"

namespace pregelix {

/// Summary statistics of a generated dataset, in the shape of the paper's
/// Tables 3 and 4 rows.
struct GraphStats {
  std::string name;
  int64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t size_bytes = 0;
  double avg_degree() const {
    return num_vertices == 0
               ? 0.0
               : static_cast<double>(num_edges) /
                     static_cast<double>(num_vertices);
  }
};

/// Synthetic stand-in for the Yahoo! Webmap crawl (Table 3): a directed
/// graph with a power-law-ish out-degree distribution (mean `avg_degree`,
/// heavy-tailed hubs) and skewed destination popularity, generated
/// deterministically from `seed` and streamed straight to `num_parts` part
/// files under `dir`. See DESIGN.md substitutions.
Status GenerateWebmapLike(DistributedFileSystem& dfs, const std::string& dir,
                          int num_parts, int64_t num_vertices,
                          double avg_degree, uint64_t seed, GraphStats* stats);

/// Synthetic stand-in for the Billion Triple Challenge graph (Table 4): an
/// undirected graph (symmetric adjacency) with near-constant degree, built
/// from a ring lattice plus skewed long-range links. Materialized in memory
/// (laptop-scale sizes) before writing.
Status GenerateBtcLike(DistributedFileSystem& dfs, const std::string& dir,
                       int num_parts, int64_t num_vertices, double avg_degree,
                       uint64_t seed, GraphStats* stats);

/// Scale-up by deep copy + renumbering the duplicate vertices with a new set
/// of identifiers, exactly as the paper built the larger BTC variants: the
/// output has `factor` disjoint copies of the input graph.
Status ScaleUpGraph(DistributedFileSystem& dfs, const std::string& src_dir,
                    const std::string& dst_dir, int num_parts, int factor,
                    GraphStats* stats);

/// Computes stats of an existing graph directory.
Status MeasureGraph(const DistributedFileSystem& dfs, const std::string& dir,
                    GraphStats* stats);

}  // namespace pregelix

#endif  // PREGELIX_GRAPH_GENERATOR_H_
