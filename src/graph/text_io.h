#ifndef PREGELIX_GRAPH_TEXT_IO_H_
#define PREGELIX_GRAPH_TEXT_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dfs/dfs.h"

namespace pregelix {

/// Adjacency text format (the analog of the paper's SimpleTextInputFormat):
/// one vertex per line, whitespace-separated:
///
///   <vid> <dst0> <dst1> ... <dstK>
///
/// Graph directories on the DFS contain `part-<i>` files; a loader streams
/// every part. Edge values are implicit (1.0) — the built-in algorithms that
/// need weights derive deterministic ones from the endpoint ids.

/// Callback per vertex line.
using VertexLineFn =
    std::function<Status(int64_t vid, const std::vector<int64_t>& dests)>;

/// Streams every `part-*` file of `dir` through `fn`, in part order.
Status ScanGraphDir(const DistributedFileSystem& dfs, const std::string& dir,
                    const VertexLineFn& fn);

/// Streams one part file.
Status ScanGraphPart(const DistributedFileSystem& dfs,
                     const std::string& part_path, const VertexLineFn& fn);

/// Formats one adjacency line (no trailing newline handling — appends '\n').
void AppendVertexLine(int64_t vid, const std::vector<int64_t>& dests,
                      std::string* out);

/// Simple in-memory adjacency list for reference algorithms and samplers;
/// vertex ids must be dense [0, n).
struct InMemoryGraph {
  std::vector<std::vector<int64_t>> adj;

  int64_t num_vertices() const { return static_cast<int64_t>(adj.size()); }
  uint64_t num_edges() const {
    uint64_t e = 0;
    for (const auto& v : adj) e += v.size();
    return e;
  }
  double avg_degree() const {
    return adj.empty() ? 0.0
                       : static_cast<double>(num_edges()) /
                             static_cast<double>(adj.size());
  }
};

/// Loads a graph directory into memory (test/reference scale only).
Status LoadGraph(const DistributedFileSystem& dfs, const std::string& dir,
                 InMemoryGraph* graph);

/// Writes an in-memory graph out as `num_parts` part files (vertices are
/// hash-partitioned by vid like the runtime does).
Status WriteGraph(DistributedFileSystem& dfs, const std::string& dir,
                  const InMemoryGraph& graph, int num_parts);

}  // namespace pregelix

#endif  // PREGELIX_GRAPH_TEXT_IO_H_
