#include "graph/text_io.h"

#include <charconv>

#include "common/hash.h"
#include "common/logging.h"

namespace pregelix {

namespace {

/// Parses one adjacency line in place.
Status ParseLine(const char* begin, const char* end, int64_t* vid,
                 std::vector<int64_t>* dests) {
  dests->clear();
  const char* p = begin;
  bool first = true;
  while (p < end) {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    if (p >= end) break;
    int64_t value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc()) {
      return Status::Corruption("bad adjacency line token");
    }
    if (first) {
      *vid = value;
      first = false;
    } else {
      dests->push_back(value);
    }
    p = next;
  }
  if (first) return Status::Corruption("empty adjacency line");
  return Status::OK();
}

}  // namespace

Status ScanGraphPart(const DistributedFileSystem& dfs,
                     const std::string& part_path, const VertexLineFn& fn) {
  std::string contents;
  PREGELIX_RETURN_NOT_OK(dfs.Read(part_path, &contents));
  const char* p = contents.data();
  const char* end = p + contents.size();
  std::vector<int64_t> dests;
  while (p < end) {
    const char* line_end = p;
    while (line_end < end && *line_end != '\n') ++line_end;
    if (line_end > p) {
      int64_t vid = 0;
      PREGELIX_RETURN_NOT_OK(ParseLine(p, line_end, &vid, &dests));
      PREGELIX_RETURN_NOT_OK(fn(vid, dests));
    }
    p = line_end + 1;
  }
  return Status::OK();
}

Status ScanGraphDir(const DistributedFileSystem& dfs, const std::string& dir,
                    const VertexLineFn& fn) {
  std::vector<std::string> names;
  PREGELIX_RETURN_NOT_OK(dfs.List(dir, &names));
  for (const std::string& name : names) {
    if (name.rfind("part-", 0) != 0) continue;
    PREGELIX_RETURN_NOT_OK(ScanGraphPart(dfs, dir + "/" + name, fn));
  }
  return Status::OK();
}

void AppendVertexLine(int64_t vid, const std::vector<int64_t>& dests,
                      std::string* out) {
  out->append(std::to_string(vid));
  for (int64_t d : dests) {
    out->push_back(' ');
    out->append(std::to_string(d));
  }
  out->push_back('\n');
}

Status LoadGraph(const DistributedFileSystem& dfs, const std::string& dir,
                 InMemoryGraph* graph) {
  graph->adj.clear();
  return ScanGraphDir(
      dfs, dir, [&](int64_t vid, const std::vector<int64_t>& dests) {
        if (vid < 0) return Status::Corruption("negative vid");
        if (static_cast<size_t>(vid) >= graph->adj.size()) {
          graph->adj.resize(vid + 1);
        }
        graph->adj[vid] = dests;
        return Status::OK();
      });
}

Status WriteGraph(DistributedFileSystem& dfs, const std::string& dir,
                  const InMemoryGraph& graph, int num_parts) {
  PREGELIX_CHECK(num_parts > 0);
  std::vector<std::unique_ptr<WritableFile>> parts(num_parts);
  for (int i = 0; i < num_parts; ++i) {
    PREGELIX_RETURN_NOT_OK(dfs.OpenForWrite(
        dir + "/part-" + std::to_string(i), &parts[i]));
  }
  std::string line;
  for (int64_t vid = 0; vid < graph.num_vertices(); ++vid) {
    line.clear();
    AppendVertexLine(vid, graph.adj[vid], &line);
    const int part = static_cast<int>(HashVid(vid) % num_parts);
    PREGELIX_RETURN_NOT_OK(parts[part]->Append(line));
  }
  for (auto& part : parts) {
    PREGELIX_RETURN_NOT_OK(part->Close());
  }
  return Status::OK();
}

}  // namespace pregelix
