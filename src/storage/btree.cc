#include "storage/btree.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/logging.h"
#include "common/serde.h"

namespace pregelix {

namespace {

constexpr PageId kInvalidPage = 0xFFFFFFFFu;
constexpr size_t kHeaderSize = 16;
constexpr uint32_t kMetaMagic = 0x42545231;  // "BTR1"

// Page header fields (all pages except meta/overflow):
//   [0]  u8  level (0 = leaf)
//   [1]  u8  flags (unused)
//   [2]  u16 num_entries
//   [4]  u16 cell_start      -- lowest used cell byte; cells grow downward
//   [6]  u16 frag_bytes      -- reclaimable holes from deleted cells
//   [8]  u32 right_sibling   -- leaf chain
//   [12] u32 reserved
//
// Slot array: u16 cell offsets starting at kHeaderSize, in key order.
//
// Leaf cell:     u16 klen | u8 ovf | key | payload
//   payload (ovf=0): u32 vlen | value bytes
//   payload (ovf=1): u32 total_len | u32 head_page
// Interior cell: u16 klen | u8 0   | key | u32 child
//
// Overflow page: u32 next | u32 len | data
//
// Meta page (page 0): u32 magic | u32 root | u32 first_leaf | u32 height |
//                     u64 num_entries | u32 free_head

uint8_t Level(const char* p) { return static_cast<uint8_t>(p[0]); }
void SetLevel(char* p, uint8_t v) { p[0] = static_cast<char>(v); }
uint16_t NumEntries(const char* p) {
  return static_cast<uint16_t>(DecodeFixed32(p + 2) & 0xffff);
}
void SetNumEntries(char* p, uint16_t v) { memcpy(p + 2, &v, 2); }
uint16_t CellStart(const char* p) {
  uint16_t v;
  memcpy(&v, p + 4, 2);
  return v;
}
void SetCellStart(char* p, uint16_t v) { memcpy(p + 4, &v, 2); }
uint16_t FragBytes(const char* p) {
  uint16_t v;
  memcpy(&v, p + 6, 2);
  return v;
}
void SetFragBytes(char* p, uint16_t v) { memcpy(p + 6, &v, 2); }
PageId RightSibling(const char* p) { return DecodeFixed32(p + 8); }
void SetRightSibling(char* p, PageId v) { EncodeFixed32(p + 8, v); }

uint16_t SlotAt(const char* p, int i) {
  uint16_t v;
  memcpy(&v, p + kHeaderSize + 2 * i, 2);
  return v;
}
void SetSlotAt(char* p, int i, uint16_t v) {
  memcpy(p + kHeaderSize + 2 * i, &v, 2);
}

/// Key of the cell in slot i.
Slice CellKey(const char* p, int i) {
  const char* cell = p + SlotAt(p, i);
  uint16_t klen;
  memcpy(&klen, cell, 2);
  return Slice(cell + 3, klen);
}

/// Full cell bytes in slot i (requires knowing the cell's size).
size_t LeafCellSize(const char* cell) {
  uint16_t klen;
  memcpy(&klen, cell, 2);
  const uint8_t ovf = static_cast<uint8_t>(cell[2]);
  if (ovf != 0) return 3u + klen + 8u;
  const uint32_t vlen = DecodeFixed32(cell + 3 + klen);
  return 3u + klen + 4u + vlen;
}
size_t InteriorCellSize(const char* cell) {
  uint16_t klen;
  memcpy(&klen, cell, 2);
  return 3u + klen + 4u;
}
size_t CellSize(const char* page, int i) {
  const char* cell = page + SlotAt(page, i);
  return Level(page) == 0 ? LeafCellSize(cell) : InteriorCellSize(cell);
}

void InitNodePage(char* p, uint8_t level, size_t page_size) {
  memset(p, 0, kHeaderSize);
  SetLevel(p, level);
  SetNumEntries(p, 0);
  SetCellStart(p, static_cast<uint16_t>(page_size));
  SetFragBytes(p, 0);
  SetRightSibling(p, kInvalidPage);
}

size_t FreeSpace(const char* p) {
  return CellStart(p) - (kHeaderSize + 2u * NumEntries(p));
}

/// Binary search: index of the first slot with key >= target, in [0, n].
/// Fast path shared with the sort/merge kernels: the target's 8-byte
/// normalized key prefix (slice.h) is computed once, each probed cell's
/// prefix is one unaligned load + byte swap, and the full memcmp runs only
/// on a prefix tie — with the 8-byte ordered vertex-id keys of the vertex
/// relation nearly every probe is settled by the integer compare.
int LowerBound(const char* p, const Slice& target) {
  const uint64_t target_norm = NormalizedKeyPrefix(target);
  int lo = 0, hi = NumEntries(p);
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    const Slice key = CellKey(p, mid);
    const uint64_t key_norm = NormalizedKeyPrefix(key);
    const bool below = key_norm != target_norm ? key_norm < target_norm
                                               : key.compare(target) < 0;
    if (below) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Interior descent: last slot with key <= target, clamped to 0.
int ChildIndex(const char* p, const Slice& target) {
  const int lb = LowerBound(p, target);
  if (lb < NumEntries(p) && CellKey(p, lb) == target) return lb;
  return lb > 0 ? lb - 1 : 0;
}

PageId InteriorChild(const char* p, int i) {
  const char* cell = p + SlotAt(p, i);
  uint16_t klen;
  memcpy(&klen, cell, 2);
  return DecodeFixed32(cell + 3 + klen);
}

std::string MakeLeafCell(const Slice& key, const Slice& payload,
                         bool overflow) {
  std::string cell;
  const uint16_t klen = static_cast<uint16_t>(key.size());
  cell.append(reinterpret_cast<const char*>(&klen), 2);
  cell.push_back(overflow ? 1 : 0);
  cell.append(key.data(), key.size());
  cell.append(payload.data(), payload.size());
  return cell;
}

std::string MakeInteriorCell(const Slice& key, PageId child) {
  std::string cell;
  const uint16_t klen = static_cast<uint16_t>(key.size());
  cell.append(reinterpret_cast<const char*>(&klen), 2);
  cell.push_back(0);
  cell.append(key.data(), key.size());
  char buf[4];
  EncodeFixed32(buf, child);
  cell.append(buf, 4);
  return cell;
}

/// Appends a raw cell to a page that has room; inserts the slot at `pos`.
void AppendCell(char* p, int pos, const Slice& cell) {
  const uint16_t n = NumEntries(p);
  const uint16_t new_start =
      static_cast<uint16_t>(CellStart(p) - cell.size());
  memcpy(p + new_start, cell.data(), cell.size());
  // Shift slots [pos, n) right by one.
  memmove(p + kHeaderSize + 2 * (pos + 1), p + kHeaderSize + 2 * pos,
          2u * (n - pos));
  SetSlotAt(p, pos, new_start);
  SetCellStart(p, new_start);
  SetNumEntries(p, static_cast<uint16_t>(n + 1));
}

/// Removes slot `pos`, leaving the cell bytes as a hole.
void RemoveSlot(char* p, int pos) {
  const uint16_t n = NumEntries(p);
  const size_t dead = CellSize(p, pos);
  memmove(p + kHeaderSize + 2 * pos, p + kHeaderSize + 2 * (pos + 1),
          2u * (n - pos - 1));
  SetNumEntries(p, static_cast<uint16_t>(n - 1));
  SetFragBytes(p, static_cast<uint16_t>(FragBytes(p) + dead));
}

/// Rewrites the page with its live cells only, reclaiming holes.
void CompactPage(char* p, size_t page_size) {
  const uint16_t n = NumEntries(p);
  std::vector<std::string> cells;
  cells.reserve(n);
  for (int i = 0; i < n; ++i) {
    const char* cell = p + SlotAt(p, i);
    cells.emplace_back(cell, CellSize(p, i));
  }
  const uint8_t level = Level(p);
  const PageId sibling = RightSibling(p);
  InitNodePage(p, level, page_size);
  SetRightSibling(p, sibling);
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendCell(p, static_cast<int>(i), cells[i]);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Open / meta

BTree::BTree(BufferCache* cache, int file_id)
    : cache_(cache), file_id_(file_id) {}

BTree::~BTree() {
  if (!destroyed_) {
    Status s = Flush();
    if (!s.ok()) {
      PLOG(Warn) << "btree flush on close failed: " << s.ToString();
    }
  }
}

Status BTree::Open(BufferCache* cache, const std::string& path,
                   std::unique_ptr<BTree>* out) {
  int file_id = -1;
  PREGELIX_RETURN_NOT_OK(cache->OpenFile(path, &file_id));
  std::unique_ptr<BTree> tree(new BTree(cache, file_id));
  if (cache->registry() != nullptr) {
    const MetricLabels labels{{"worker", std::to_string(cache->worker_id())},
                              {"storage_tier", "btree"}};
    tree->probes_ = cache->registry()->GetCounter("pregelix.storage.probes",
                                                  labels);
    tree->inserts_ = cache->registry()->GetCounter("pregelix.storage.inserts",
                                                   labels);
  }
  if (cache->NumPages(file_id) == 0) {
    // Fresh tree: meta page + empty leaf root.
    PageHandle meta;
    PREGELIX_RETURN_NOT_OK(cache->AllocatePage(file_id, &meta));
    PageHandle leaf;
    PREGELIX_RETURN_NOT_OK(cache->AllocatePage(file_id, &leaf));
    InitNodePage(leaf.data(), 0, cache->page_size());
    leaf.MarkDirty();
    tree->root_ = leaf.page_id();
    tree->first_leaf_ = leaf.page_id();
    tree->height_ = 1;
    tree->num_entries_ = 0;
    tree->free_head_ = kInvalidPage;
    meta.MarkDirty();
    leaf.Release();
    meta.Release();
    PREGELIX_RETURN_NOT_OK(tree->SaveMeta());
  } else {
    PREGELIX_RETURN_NOT_OK(tree->LoadMeta());
  }
  *out = std::move(tree);
  return Status::OK();
}

Status BTree::LoadMeta() {
  PageHandle meta;
  PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, 0, &meta));
  const char* p = meta.data();
  if (DecodeFixed32(p) != kMetaMagic) {
    return Status::Corruption("btree meta magic mismatch");
  }
  root_ = DecodeFixed32(p + 4);
  first_leaf_ = DecodeFixed32(p + 8);
  height_ = static_cast<int>(DecodeFixed32(p + 12));
  num_entries_ = DecodeFixed64(p + 16);
  free_head_ = DecodeFixed32(p + 24);
  return Status::OK();
}

Status BTree::SaveMeta() {
  PageHandle meta;
  PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, 0, &meta));
  char* p = meta.data();
  EncodeFixed32(p, kMetaMagic);
  EncodeFixed32(p + 4, root_);
  EncodeFixed32(p + 8, first_leaf_);
  EncodeFixed32(p + 12, static_cast<uint32_t>(height_));
  EncodeFixed64(p + 16, num_entries_);
  EncodeFixed32(p + 24, free_head_);
  meta.MarkDirty();
  return Status::OK();
}

Status BTree::Flush() {
  PREGELIX_RETURN_NOT_OK(SaveMeta());
  return cache_->FlushFile(file_id_);
}

Status BTree::Destroy() {
  destroyed_ = true;
  return cache_->DeleteFile(file_id_);
}

// ---------------------------------------------------------------------------
// Overflow chains

Status BTree::AllocOverflowPage(PageHandle* out, PageId* id) {
  if (free_head_ != kInvalidPage) {
    PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, free_head_, out));
    *id = free_head_;
    free_head_ = DecodeFixed32(out->data());
    return Status::OK();
  }
  PREGELIX_RETURN_NOT_OK(cache_->AllocatePage(file_id_, out));
  *id = out->page_id();
  return Status::OK();
}

Status BTree::EncodeLeafValue(const Slice& value, std::string* cell_payload,
                              bool* overflow) {
  const size_t inline_limit = cache_->page_size() / 4;
  if (value.size() <= inline_limit) {
    *overflow = false;
    cell_payload->clear();
    PutFixed32(cell_payload, static_cast<uint32_t>(value.size()));
    cell_payload->append(value.data(), value.size());
    return Status::OK();
  }
  *overflow = true;
  const size_t chunk = cache_->page_size() - 8;
  // Build the chain back to front so each page can point at the next.
  PageId next = kInvalidPage;
  size_t remaining = value.size();
  // Chunks: first page gets the first bytes; write pages from last chunk.
  size_t num_chunks = (value.size() + chunk - 1) / chunk;
  for (size_t c = num_chunks; c-- > 0;) {
    const size_t off = c * chunk;
    const size_t len = std::min(chunk, value.size() - off);
    PageHandle page;
    PageId id;
    PREGELIX_RETURN_NOT_OK(AllocOverflowPage(&page, &id));
    char* p = page.data();
    EncodeFixed32(p, next);
    EncodeFixed32(p + 4, static_cast<uint32_t>(len));
    memcpy(p + 8, value.data() + off, len);
    page.MarkDirty();
    next = id;
  }
  (void)remaining;
  cell_payload->clear();
  PutFixed32(cell_payload, static_cast<uint32_t>(value.size()));
  PutFixed32(cell_payload, next);  // head page
  return Status::OK();
}

Status BTree::ReadLeafValue(const Slice& cell_payload, bool overflow,
                            std::string* value) const {
  if (!overflow) {
    const uint32_t vlen = DecodeFixed32(cell_payload.data());
    value->assign(cell_payload.data() + 4, vlen);
    return Status::OK();
  }
  const uint32_t total = DecodeFixed32(cell_payload.data());
  PageId page_id = DecodeFixed32(cell_payload.data() + 4);
  value->clear();
  value->reserve(total);
  while (page_id != kInvalidPage && value->size() < total) {
    PageHandle page;
    PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, page_id, &page));
    const char* p = page.data();
    const PageId next = DecodeFixed32(p);
    const uint32_t len = DecodeFixed32(p + 4);
    value->append(p + 8, len);
    page_id = next;
  }
  if (value->size() != total) {
    return Status::Corruption("overflow chain truncated");
  }
  return Status::OK();
}

Status BTree::FreeOverflowChain(const Slice& cell_payload) {
  PageId page_id = DecodeFixed32(cell_payload.data() + 4);
  while (page_id != kInvalidPage) {
    PageHandle page;
    PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, page_id, &page));
    const PageId next = DecodeFixed32(page.data());
    EncodeFixed32(page.data(), free_head_);
    page.MarkDirty();
    free_head_ = page_id;
    page_id = next;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Search

Status BTree::FindLeaf(const Slice& key, std::vector<PageId>* path_pages,
                       PageId* leaf, bool lower_fence) {
  PageId current = root_;
  for (;;) {
    if (path_pages != nullptr) path_pages->push_back(current);
    PageHandle page;
    PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, current, &page));
    char* p = page.data();
    if (Level(p) == 0) {
      *leaf = current;
      return Status::OK();
    }
    PREGELIX_CHECK(NumEntries(p) > 0) << "empty interior node";
    if (lower_fence && NumEntries(p) > 0 && !CellKey(p, 0).empty() &&
        key.compare(CellKey(p, 0)) < 0) {
      // The key descends left of every separator: rewrite entry 0 with the
      // -infinity fence so future splits cannot insert a separator in front
      // of it. The fence cell is smaller than the one it replaces, so after
      // compaction it always fits.
      const PageId child0 = InteriorChild(p, 0);
      RemoveSlot(p, 0);
      const std::string fence = MakeInteriorCell(Slice(), child0);
      if (FreeSpace(p) < fence.size() + 2) {
        CompactPage(p, cache_->page_size());
      }
      AppendCell(p, 0, fence);
      page.MarkDirty();
    }
    current = InteriorChild(p, ChildIndex(p, key));
  }
}

Status BTree::Get(const Slice& key, std::string* value) {
  if (probes_ != nullptr) probes_->Increment();
  PageId leaf_id;
  PREGELIX_RETURN_NOT_OK(FindLeaf(key, nullptr, &leaf_id));
  PageHandle page;
  PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, leaf_id, &page));
  const char* p = page.data();
  const int pos = LowerBound(p, key);
  if (pos >= NumEntries(p) || CellKey(p, pos) != key) {
    return Status::NotFound();
  }
  const char* cell = p + SlotAt(p, pos);
  uint16_t klen;
  memcpy(&klen, cell, 2);
  const bool ovf = cell[2] != 0;
  const size_t payload_size = ovf ? 8 : 4 + DecodeFixed32(cell + 3 + klen);
  return ReadLeafValue(Slice(cell + 3 + klen, payload_size), ovf, value);
}

// ---------------------------------------------------------------------------
// Insert / split

Status BTree::Upsert(const Slice& key, const Slice& value) {
  if (inserts_ != nullptr) inserts_->Increment();
  PREGELIX_CHECK(key.size() + 64 < cache_->page_size() / 4)
      << "key too large for page size";
  std::vector<PageId> path;
  PageId leaf_id;
  PREGELIX_RETURN_NOT_OK(FindLeaf(key, &path, &leaf_id, /*lower_fence=*/true));

  std::string payload;
  bool overflow = false;
  PREGELIX_RETURN_NOT_OK(EncodeLeafValue(value, &payload, &overflow));
  const std::string cell = MakeLeafCell(key, payload, overflow);

  PageHandle page;
  PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, leaf_id, &page));
  char* p = page.data();
  int pos = LowerBound(p, key);
  const bool exists = pos < NumEntries(p) && CellKey(p, pos) == key;

  if (exists) {
    char* old_cell = p + SlotAt(p, pos);
    const size_t old_size = LeafCellSize(old_cell);
    const bool old_ovf = old_cell[2] != 0;
    if (old_ovf) {
      uint16_t klen;
      memcpy(&klen, old_cell, 2);
      PREGELIX_RETURN_NOT_OK(
          FreeOverflowChain(Slice(old_cell + 3 + klen, 8)));
    }
    if (old_size == cell.size()) {
      // Fast path: same-size in-place replacement (PageRank-style updates).
      memcpy(old_cell, cell.data(), cell.size());
      page.MarkDirty();
      return Status::OK();
    }
    RemoveSlot(p, pos);
    --num_entries_;
    page.MarkDirty();
  }
  page.Release();
  ++num_entries_;
  return InsertIntoLeaf(key, cell, path, leaf_id);
}

Status BTree::InsertIntoLeaf(const Slice& key, const std::string& cell,
                             std::vector<PageId>& path, PageId leaf_id) {
  PageHandle page;
  PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, leaf_id, &page));
  char* p = page.data();
  const size_t page_size = cache_->page_size();
  int pos = LowerBound(p, key);

  if (FreeSpace(p) >= cell.size() + 2) {
    AppendCell(p, pos, cell);
    page.MarkDirty();
    return Status::OK();
  }
  if (FreeSpace(p) + FragBytes(p) >= cell.size() + 2) {
    CompactPage(p, page_size);
    AppendCell(p, pos, cell);
    page.MarkDirty();
    return Status::OK();
  }

  // Split: gather live cells plus the new one, in key order.
  const uint16_t n = NumEntries(p);
  std::vector<std::string> cells;
  cells.reserve(n + 1);
  for (int i = 0; i < n; ++i) {
    if (i == pos) cells.emplace_back(cell);
    const char* c = p + SlotAt(p, i);
    cells.emplace_back(c, CellSize(p, i));
  }
  if (pos == n) cells.emplace_back(cell);

  size_t total = 0;
  for (const auto& c : cells) total += c.size() + 2;
  size_t acc = 0;
  size_t split_at = 0;
  for (; split_at < cells.size() - 1; ++split_at) {
    acc += cells[split_at].size() + 2;
    if (acc >= total / 2) {
      ++split_at;
      break;
    }
  }
  if (split_at == 0) split_at = 1;
  if (split_at >= cells.size()) split_at = cells.size() - 1;

  PageHandle right;
  PREGELIX_RETURN_NOT_OK(cache_->AllocatePage(file_id_, &right));
  char* rp = right.data();
  InitNodePage(rp, 0, page_size);
  SetRightSibling(rp, RightSibling(p));

  const PageId sibling = RightSibling(p);
  (void)sibling;
  InitNodePage(p, 0, page_size);
  SetRightSibling(p, right.page_id());

  for (size_t i = 0; i < split_at; ++i) {
    AppendCell(p, static_cast<int>(i), cells[i]);
  }
  for (size_t i = split_at; i < cells.size(); ++i) {
    AppendCell(rp, static_cast<int>(i - split_at), cells[i]);
  }
  page.MarkDirty();
  right.MarkDirty();

  // Separator for the parent = first key of the right page.
  uint16_t klen;
  memcpy(&klen, cells[split_at].data(), 2);
  std::string sep(cells[split_at].data() + 3, klen);
  std::string left_first_key;
  memcpy(&klen, cells[0].data(), 2);
  left_first_key.assign(cells[0].data() + 3, klen);
  const PageId right_id = right.page_id();
  const PageId left_id = leaf_id;
  page.Release();
  right.Release();

  if (path.size() == 1) {
    return SplitRoot(left_first_key, left_id, sep, right_id, 1);
  }
  return InsertIntoInterior(path, path.size() - 2, sep, right_id);
}

Status BTree::InsertIntoInterior(std::vector<PageId>& path,
                                 size_t level_index, const std::string& sep,
                                 PageId child) {
  const PageId node_id = path[level_index];
  PageHandle page;
  PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, node_id, &page));
  char* p = page.data();
  const size_t page_size = cache_->page_size();
  const std::string cell = MakeInteriorCell(sep, child);
  int pos = LowerBound(p, sep);

  if (FreeSpace(p) >= cell.size() + 2) {
    AppendCell(p, pos, cell);
    page.MarkDirty();
    return Status::OK();
  }
  if (FreeSpace(p) + FragBytes(p) >= cell.size() + 2) {
    CompactPage(p, page_size);
    AppendCell(p, pos, cell);
    page.MarkDirty();
    return Status::OK();
  }

  const uint16_t n = NumEntries(p);
  std::vector<std::string> cells;
  cells.reserve(n + 1);
  for (int i = 0; i < n; ++i) {
    if (i == pos) cells.emplace_back(cell);
    const char* c = p + SlotAt(p, i);
    cells.emplace_back(c, CellSize(p, i));
  }
  if (pos == n) cells.emplace_back(cell);

  size_t total = 0;
  for (const auto& c : cells) total += c.size() + 2;
  size_t acc = 0;
  size_t split_at = 0;
  for (; split_at < cells.size() - 1; ++split_at) {
    acc += cells[split_at].size() + 2;
    if (acc >= total / 2) {
      ++split_at;
      break;
    }
  }
  if (split_at == 0) split_at = 1;
  if (split_at >= cells.size()) split_at = cells.size() - 1;

  const uint8_t level = Level(p);
  PageHandle right;
  PREGELIX_RETURN_NOT_OK(cache_->AllocatePage(file_id_, &right));
  char* rp = right.data();
  InitNodePage(rp, level, page_size);
  InitNodePage(p, level, page_size);

  for (size_t i = 0; i < split_at; ++i) {
    AppendCell(p, static_cast<int>(i), cells[i]);
  }
  for (size_t i = split_at; i < cells.size(); ++i) {
    AppendCell(rp, static_cast<int>(i - split_at), cells[i]);
  }
  page.MarkDirty();
  right.MarkDirty();

  uint16_t klen;
  memcpy(&klen, cells[split_at].data(), 2);
  std::string up_sep(cells[split_at].data() + 3, klen);
  memcpy(&klen, cells[0].data(), 2);
  std::string left_first(cells[0].data() + 3, klen);
  const PageId right_id = right.page_id();
  page.Release();
  right.Release();

  if (level_index == 0) {
    return SplitRoot(left_first, node_id, up_sep, right_id,
                     static_cast<uint8_t>(level + 1));
  }
  return InsertIntoInterior(path, level_index - 1, up_sep, right_id);
}

Status BTree::SplitRoot(const std::string& left_key, PageId left,
                        const std::string& right_key, PageId right,
                        uint8_t level) {
  PageHandle page;
  PREGELIX_RETURN_NOT_OK(cache_->AllocatePage(file_id_, &page));
  char* p = page.data();
  InitNodePage(p, level, cache_->page_size());
  AppendCell(p, 0, MakeInteriorCell(left_key, left));
  AppendCell(p, 1, MakeInteriorCell(right_key, right));
  page.MarkDirty();
  root_ = page.page_id();
  ++height_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Delete

Status BTree::Delete(const Slice& key) {
  PageId leaf_id;
  PREGELIX_RETURN_NOT_OK(FindLeaf(key, nullptr, &leaf_id));
  PageHandle page;
  PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, leaf_id, &page));
  char* p = page.data();
  const int pos = LowerBound(p, key);
  if (pos >= NumEntries(p) || CellKey(p, pos) != key) {
    return Status::OK();  // idempotent
  }
  char* cell = p + SlotAt(p, pos);
  if (cell[2] != 0) {
    uint16_t klen;
    memcpy(&klen, cell, 2);
    PREGELIX_RETURN_NOT_OK(FreeOverflowChain(Slice(cell + 3 + klen, 8)));
  }
  RemoveSlot(p, pos);
  page.MarkDirty();
  --num_entries_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Consistency check

namespace {
struct SubtreeInfo {
  std::string min_key;
  std::string max_key;
  PageId first_leaf;
  PageId last_leaf;
  int leaf_count;
};
}  // namespace

/// Recursive helper defined as a member-like free function via lambda below.
Status BTree::CheckConsistency() const {
  // Recursively verify a subtree; returns its key range and leaf span.
  std::function<Status(PageId, SubtreeInfo*)> check =
      [&](PageId page_id, SubtreeInfo* info) -> Status {
    PageHandle page;
    PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, page_id, &page));
    const char* p = page.data();
    const int n = NumEntries(p);
    for (int i = 1; i < n; ++i) {
      if (CellKey(p, i - 1).compare(CellKey(p, i)) >= 0) {
        return Status::Corruption("unsorted keys in page " +
                                  std::to_string(page_id));
      }
    }
    if (Level(p) == 0) {
      info->first_leaf = info->last_leaf = page_id;
      info->leaf_count = 1;
      if (n > 0) {
        info->min_key = CellKey(p, 0).ToString();
        info->max_key = CellKey(p, n - 1).ToString();
      }
      return Status::OK();
    }
    if (n == 0) {
      return Status::Corruption("empty interior page " +
                                std::to_string(page_id));
    }
    SubtreeInfo prev{};
    info->leaf_count = 0;
    for (int i = 0; i < n; ++i) {
      const std::string sep = CellKey(p, i).ToString();
      SubtreeInfo child{};
      PREGELIX_RETURN_NOT_OK(check(InteriorChild(p, i), &child));
      if (!child.min_key.empty() &&
          Slice(child.min_key).compare(Slice(sep)) < 0) {
        return Status::Corruption(
            "child min key below separator in page " +
            std::to_string(page_id) + " entry " + std::to_string(i) +
            " sep=" + std::to_string(DecodeOrderedI64(sep.data())) +
            " child_min=" +
            std::to_string(DecodeOrderedI64(child.min_key.data())) +
            " child_page=" + std::to_string(InteriorChild(p, i)));
      }
      if (i > 0 && !prev.max_key.empty() && !child.min_key.empty() &&
          Slice(prev.max_key).compare(Slice(child.min_key)) >= 0) {
        return Status::Corruption("overlapping children in page " +
                                  std::to_string(page_id));
      }
      if (i > 0) {
        // Leaf chain must connect adjacent subtrees.
        PageHandle left_leaf;
        PREGELIX_RETURN_NOT_OK(
            cache_->Pin(file_id_, prev.last_leaf, &left_leaf));
        if (RightSibling(left_leaf.data()) != child.first_leaf) {
          return Status::Corruption("broken leaf chain at page " +
                                    std::to_string(prev.last_leaf));
        }
      }
      if (i == 0) {
        info->min_key = child.min_key;
        info->first_leaf = child.first_leaf;
      }
      info->leaf_count += child.leaf_count;
      prev = child;
    }
    info->max_key = prev.max_key;
    info->last_leaf = prev.last_leaf;
    return Status::OK();
  };
  SubtreeInfo root_info{};
  PREGELIX_RETURN_NOT_OK(check(root_, &root_info));
  if (root_info.first_leaf != first_leaf_) {
    return Status::Corruption("first_leaf mismatch: meta says " +
                              std::to_string(first_leaf_) + " tree says " +
                              std::to_string(root_info.first_leaf));
  }
  return Status::OK();
}

void BTree::DumpStructure() const {
  std::function<void(PageId, int)> dump = [&](PageId page_id, int depth) {
    PageHandle page;
    Status s = cache_->Pin(file_id_, page_id, &page);
    if (!s.ok()) {
      fprintf(stderr, "%*spage %u: pin failed\n", depth * 2, "", page_id);
      return;
    }
    const char* p = page.data();
    const int n = NumEntries(p);
    fprintf(stderr, "%*spage %u level=%d n=%d sibling=%u keys:", depth * 2,
            "", page_id, Level(p), n, RightSibling(p));
    for (int i = 0; i < n; ++i) {
      const Slice k = CellKey(p, i);
      if (k.size() == 8) {
        fprintf(stderr, " %lld",
                static_cast<long long>(DecodeOrderedI64(k.data())));
      }
      if (Level(p) != 0) {
        fprintf(stderr, "->%u", InteriorChild(p, i));
      }
    }
    fprintf(stderr, "\n");
    if (Level(p) != 0) {
      for (int i = 0; i < n; ++i) {
        dump(InteriorChild(p, i), depth + 1);
      }
    }
  };
  fprintf(stderr, "BTree root=%u height=%d entries=%llu\n", root_, height_,
          static_cast<unsigned long long>(num_entries_));
  dump(root_, 0);
}

// ---------------------------------------------------------------------------
// Iterator

class BTreeIterator : public IndexIterator {
 public:
  BTreeIterator(BTree* tree, BufferCache* cache, int file_id)
      : tree_(tree), cache_(cache), file_id_(file_id) {}

  Status SeekToFirst() override {
    current_page_ = tree_->first_leaf_;
    slot_ = 0;
    return SkipToValid();
  }

  Status Seek(const Slice& target) override {
    PageId leaf_id;
    PREGELIX_RETURN_NOT_OK(tree_->FindLeaf(target, nullptr, &leaf_id));
    PageHandle page;
    PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, leaf_id, &page));
    current_page_ = leaf_id;
    slot_ = LowerBound(page.data(), target);
    page.Release();
    return SkipToValid();
  }

  bool Valid() const override { return valid_; }

  Status Next() override {
    ++slot_;
    return SkipToValid();
  }

  Slice key() const override { return key_; }
  Slice value() const override { return value_; }

 private:
  /// Advances across empty leaves, loads the current entry into buffers.
  Status SkipToValid() {
    valid_ = false;
    while (current_page_ != kInvalidPage) {
      PageHandle page;
      PREGELIX_RETURN_NOT_OK(cache_->Pin(file_id_, current_page_, &page));
      const char* p = page.data();
      if (slot_ < NumEntries(p)) {
        key_ = CellKey(p, slot_).ToString();
        const char* cell = p + SlotAt(p, slot_);
        uint16_t klen;
        memcpy(&klen, cell, 2);
        const bool ovf = cell[2] != 0;
        const size_t payload_size =
            ovf ? 8 : 4 + DecodeFixed32(cell + 3 + klen);
        PREGELIX_RETURN_NOT_OK(tree_->ReadLeafValue(
            Slice(cell + 3 + klen, payload_size), ovf, &value_));
        valid_ = true;
        return Status::OK();
      }
      current_page_ = RightSibling(p);
      slot_ = 0;
    }
    return Status::OK();
  }

  BTree* tree_;
  BufferCache* cache_;
  int file_id_;
  PageId current_page_ = kInvalidPage;
  int slot_ = 0;
  bool valid_ = false;
  std::string key_;
  std::string value_;
};

std::unique_ptr<IndexIterator> BTree::NewIterator() {
  return std::make_unique<BTreeIterator>(this, cache_, file_id_);
}

// ---------------------------------------------------------------------------
// Bulk load

/// Builds a tree bottom-up from sorted input, leaving ~10% slack per leaf so
/// later in-place updates rarely split immediately.
class BTreeBulkLoader : public IndexBulkLoader {
 public:
  explicit BTreeBulkLoader(BTree* tree) : tree_(tree) {}

  Status Add(const Slice& key, const Slice& value) override {
    PREGELIX_CHECK(!finished_);
    if (added_any_) {
      PREGELIX_CHECK(Slice(last_key_).compare(key) < 0)
          << "bulk load keys out of order";
    }
    last_key_ = key.ToString();
    added_any_ = true;

    std::string payload;
    bool overflow = false;
    PREGELIX_RETURN_NOT_OK(tree_->EncodeLeafValue(value, &payload, &overflow));
    const std::string cell = MakeLeafCell(key, payload, overflow);

    const size_t slack = tree_->cache_->page_size() / 10;
    if (!leaf_.valid() ||
        FreeSpace(leaf_.data()) < cell.size() + 2 + slack) {
      PREGELIX_RETURN_NOT_OK(NewLeaf(key));
    }
    char* p = leaf_.data();
    PREGELIX_CHECK(FreeSpace(p) >= cell.size() + 2)
        << "record larger than a bulk-load leaf";
    AppendCell(p, NumEntries(p), cell);
    leaf_.MarkDirty();
    ++tree_->num_entries_;
    return Status::OK();
  }

  Status Finish() override {
    PREGELIX_CHECK(!finished_);
    finished_ = true;
    TraceSpan span(tree_->cache_->tracer(), "btree.bulk_load",
                   trace_cat::kStorage, tree_->cache_->worker_id());
    span.AddArg("entries", static_cast<int64_t>(tree_->num_entries_));
    leaf_.Release();
    if (level_entries_.empty()) {
      // Empty input: keep the existing empty root.
      return tree_->SaveMeta();
    }
    tree_->first_leaf_ = level_entries_.front().second;
    // Build interior levels until one node remains.
    std::vector<std::pair<std::string, PageId>> level =
        std::move(level_entries_);
    uint8_t lvl = 1;
    int height = 1;
    while (level.size() > 1) {
      std::vector<std::pair<std::string, PageId>> next;
      PageHandle node;
      PREGELIX_RETURN_NOT_OK(
          tree_->cache_->AllocatePage(tree_->file_id_, &node));
      InitNodePage(node.data(), lvl, tree_->cache_->page_size());
      next.emplace_back(level[0].first, node.page_id());
      for (const auto& [key, child] : level) {
        const std::string cell = MakeInteriorCell(key, child);
        if (FreeSpace(node.data()) < cell.size() + 2) {
          node.MarkDirty();
          node.Release();
          PREGELIX_RETURN_NOT_OK(
              tree_->cache_->AllocatePage(tree_->file_id_, &node));
          InitNodePage(node.data(), lvl, tree_->cache_->page_size());
          next.emplace_back(key, node.page_id());
        }
        AppendCell(node.data(), NumEntries(node.data()), cell);
        node.MarkDirty();
      }
      node.Release();
      level = std::move(next);
      ++lvl;
      ++height;
    }
    tree_->root_ = level[0].second;
    tree_->height_ = height;
    return tree_->SaveMeta();
  }

 private:
  Status NewLeaf(const Slice& first_key) {
    PageHandle next;
    PREGELIX_RETURN_NOT_OK(
        tree_->cache_->AllocatePage(tree_->file_id_, &next));
    InitNodePage(next.data(), 0, tree_->cache_->page_size());
    next.MarkDirty();
    if (leaf_.valid()) {
      SetRightSibling(leaf_.data(), next.page_id());
      leaf_.MarkDirty();
    }
    leaf_ = std::move(next);
    level_entries_.emplace_back(first_key.ToString(), leaf_.page_id());
    return Status::OK();
  }

  BTree* tree_;
  PageHandle leaf_;
  std::vector<std::pair<std::string, PageId>> level_entries_;
  std::string last_key_;
  bool added_any_ = false;
  bool finished_ = false;
};

std::unique_ptr<IndexBulkLoader> BTree::NewBulkLoader() {
  PREGELIX_CHECK(num_entries_ == 0) << "bulk load requires an empty tree";
  return std::make_unique<BTreeBulkLoader>(this);
}

}  // namespace pregelix
