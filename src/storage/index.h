#ifndef PREGELIX_STORAGE_INDEX_H_
#define PREGELIX_STORAGE_INDEX_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace pregelix {

/// Forward cursor over an ordered index. Keys are visited in memcmp order.
class IndexIterator {
 public:
  virtual ~IndexIterator() = default;

  virtual Status SeekToFirst() = 0;
  /// Positions at the first entry with key >= target.
  virtual Status Seek(const Slice& target) = 0;
  virtual bool Valid() const = 0;
  virtual Status Next() = 0;

  /// Valid only while Valid(); invalidated by Next().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
};

/// Ordered key-value index interface implemented by BTree and LsmBTree.
///
/// The Pregelix Vertex and Vid relations are stored behind this interface
/// (paper Section 5.2); the physical choice is a job-level hint. External
/// synchronization: one writer per partition (the dataflow scheduler
/// guarantees this via sticky location constraints).
class OrderedIndex {
 public:
  virtual ~OrderedIndex() = default;

  /// Inserts or replaces.
  virtual Status Upsert(const Slice& key, const Slice& value) = 0;
  /// Removes the key; OK even if absent.
  virtual Status Delete(const Slice& key) = 0;
  /// Point lookup. NotFound if absent.
  virtual Status Get(const Slice& key, std::string* value) = 0;
  virtual std::unique_ptr<IndexIterator> NewIterator() = 0;
  /// Durably writes buffered state.
  virtual Status Flush() = 0;
  /// Live entry count (excluding tombstoned keys).
  virtual uint64_t num_entries() const = 0;
};

/// Sorted-input bulk loader; Add must be called in strictly increasing key
/// order.
class IndexBulkLoader {
 public:
  virtual ~IndexBulkLoader() = default;
  virtual Status Add(const Slice& key, const Slice& value) = 0;
  virtual Status Finish() = 0;
};

}  // namespace pregelix

#endif  // PREGELIX_STORAGE_INDEX_H_
