#ifndef PREGELIX_STORAGE_BTREE_H_
#define PREGELIX_STORAGE_BTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_cache.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/index.h"

namespace pregelix {

/// Disk-resident B+-tree over a BufferCache-managed paged file.
///
/// Page layout (see btree.cc): slotted pages with a 16-byte header, slot
/// array growing up and cell data growing down; leaves are chained through a
/// right-sibling pointer for range scans; values larger than a quarter page
/// spill into an overflow page chain (web graphs have high-degree vertices
/// whose edge lists exceed a page). Page 0 is the meta page (root id, entry
/// count, first leaf).
///
/// Deletion is lazy (no rebalancing): pages may underflow but stay correct.
/// This is the standard trade-off for write-heavy iterative workloads; jobs
/// with drastic size changes are steered to the LSM B-tree (paper
/// Section 5.2).
///
/// Not internally synchronized; one partition owns one tree.
class BTree : public OrderedIndex {
 public:
  /// Opens (or creates) a tree stored in `path` through `cache`.
  static Status Open(BufferCache* cache, const std::string& path,
                     std::unique_ptr<BTree>* out);
  ~BTree() override;

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  Status Upsert(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Status Get(const Slice& key, std::string* value) override;
  std::unique_ptr<IndexIterator> NewIterator() override;
  Status Flush() override;
  uint64_t num_entries() const override { return num_entries_; }

  /// Creates a bulk loader. The tree must be empty. While a loader is
  /// outstanding no other operation may run.
  std::unique_ptr<IndexBulkLoader> NewBulkLoader();

  /// Drops the backing file. The tree must not be used afterwards.
  Status Destroy();

  uint32_t num_pages() const { return cache_->NumPages(file_id_); }
  int height() const { return height_; }

  /// Structural invariant check (debug/test aid): separators sorted, child
  /// subtree key ranges consistent with separators, leaf chain complete and
  /// ordered. Returns Corruption with a description on violation.
  Status CheckConsistency() const;

  /// Prints the node structure with int64-decoded keys (debug aid).
  void DumpStructure() const;

 private:
  friend class BTreeIterator;
  friend class BTreeBulkLoader;

  BTree(BufferCache* cache, int file_id);

  Status LoadMeta();
  Status SaveMeta();

  /// Descends from the root to the leaf that should hold `key`; fills
  /// `path_pages` with the page ids along the way (root first).
  ///
  /// With `lower_fence` set (insert descent), any interior node whose first
  /// separator exceeds `key` gets that separator lowered to the -infinity
  /// fence (empty key). This preserves the invariant that every separator is
  /// a lower bound for its child subtree, which later splits rely on when
  /// they insert new separators by key order.
  Status FindLeaf(const Slice& key, std::vector<PageId>* path_pages,
                  PageId* leaf, bool lower_fence = false);

  Status InsertIntoLeaf(const Slice& key, const std::string& cell,
                        std::vector<PageId>& path, PageId leaf_id);
  /// Inserts a separator into the parent chain after a split.
  Status InsertIntoInterior(std::vector<PageId>& path, size_t level_index,
                            const std::string& sep_key, PageId child);
  Status SplitRoot(const std::string& left_key, PageId left,
                   const std::string& right_key, PageId right, uint8_t level);

  /// Takes a page from the free list or appends one.
  Status AllocOverflowPage(PageHandle* out, PageId* id);
  /// Writes a (possibly overflowing) value; produces the encoded leaf cell
  /// payload (inline bytes or overflow reference).
  Status EncodeLeafValue(const Slice& value, std::string* cell_payload,
                         bool* overflow);
  Status ReadLeafValue(const Slice& cell_payload, bool overflow,
                       std::string* value) const;
  Status FreeOverflowChain(const Slice& cell_payload);

  BufferCache* cache_;
  int file_id_;
  // Cached registry counters (null when the cache has no registry attached,
  // e.g. a standalone cache in a unit test). Labeled storage_tier=btree.
  Counter* probes_ = nullptr;
  Counter* inserts_ = nullptr;
  PageId root_ = 0;
  PageId first_leaf_ = 0;
  PageId free_head_ = 0xFFFFFFFFu;  ///< head of the freed-page list
  uint64_t num_entries_ = 0;
  int height_ = 1;
  bool destroyed_ = false;
};

}  // namespace pregelix

#endif  // PREGELIX_STORAGE_BTREE_H_
