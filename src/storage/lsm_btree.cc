#include "storage/lsm_btree.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/temp_dir.h"
#include "io/file.h"

namespace pregelix {

namespace {
constexpr char kPutMarker = 0;
constexpr char kTombstoneMarker = 1;
constexpr char kCurrentFile[] = "CURRENT";
}  // namespace

LsmBTree::LsmBTree(BufferCache* cache, std::string dir, size_t budget)
    : cache_(cache), dir_(std::move(dir)), memtable_budget_(budget) {}

LsmBTree::~LsmBTree() {
  if (!destroyed_) {
    Status s = Flush();
    if (!s.ok()) {
      PLOG(Warn) << "lsm flush on close failed: " << s.ToString();
    }
  }
}

Status LsmBTree::Open(BufferCache* cache, const std::string& dir,
                      size_t memtable_budget_bytes,
                      std::unique_ptr<LsmBTree>* out) {
  return Open(cache, dir, memtable_budget_bytes, /*overlap=*/nullptr, out);
}

Status LsmBTree::Open(BufferCache* cache, const std::string& dir,
                      size_t memtable_budget_bytes, OverlapRuntime* overlap,
                      std::unique_ptr<LsmBTree>* out) {
  if (!EnsureDir(dir)) {
    return Status::IoError("cannot create lsm dir " + dir);
  }
  std::unique_ptr<LsmBTree> lsm(new LsmBTree(cache, dir, memtable_budget_bytes));
  lsm->overlap_ = overlap;
  if (cache->registry() != nullptr) {
    const MetricLabels labels{{"worker", std::to_string(cache->worker_id())},
                              {"storage_tier", "lsm"}};
    lsm->probes_ = cache->registry()->GetCounter("pregelix.storage.probes",
                                                 labels);
    lsm->inserts_ = cache->registry()->GetCounter("pregelix.storage.inserts",
                                                  labels);
  }
  // Recover disk components. The CURRENT manifest is the commit record: it
  // lists the ids of live components newest-first, and is rewritten
  // atomically (temp + rename) at the end of every flush/merge/bulk load.
  // Component files on disk but absent from CURRENT are debris from a crash
  // mid-flush or mid-merge and are deleted here; attaching them blindly
  // could surface torn pages or resurrect deleted keys.
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("c", 0) == 0 && name.size() > 7 &&
        name.substr(name.size() - 6) == ".btree") {
      const uint64_t id = std::strtoull(name.c_str() + 1, nullptr, 10);
      found.emplace_back(id, it->path().string());
      lsm->next_component_id_ = std::max(lsm->next_component_id_, id + 1);
    }
  }
  const std::string current_path = dir + "/" + kCurrentFile;
  std::vector<uint64_t> live;
  if (FileExists(current_path)) {
    std::string manifest;
    PREGELIX_RETURN_NOT_OK(ReadFileToString(current_path, &manifest));
    size_t pos = 0;
    while (pos < manifest.size()) {
      size_t eol = manifest.find('\n', pos);
      if (eol == std::string::npos) eol = manifest.size();
      if (eol > pos) {
        live.push_back(std::strtoull(manifest.c_str() + pos, nullptr, 10));
      }
      pos = eol + 1;
    }
  } else {
    // Legacy dir (or pre-crash-consistency data): every component is live,
    // newest first.
    std::sort(found.rbegin(), found.rend());
    for (const auto& [id, path] : found) live.push_back(id);
  }
  for (uint64_t id : live) {
    auto it = std::find_if(found.begin(), found.end(),
                           [id](const auto& f) { return f.first == id; });
    if (it == found.end()) {
      return Status::Corruption("lsm CURRENT references missing component c" +
                                std::to_string(id) + ".btree in " + dir);
    }
    std::unique_ptr<BTree> component;
    PREGELIX_RETURN_NOT_OK(BTree::Open(cache, it->second, &component));
    lsm->components_.push_back(std::move(component));
    lsm->component_ids_.push_back(id);
  }
  for (const auto& [id, path] : found) {
    if (std::find(live.begin(), live.end(), id) == live.end()) {
      PLOG(Info) << "lsm: deleting orphan component " << path;
      DeleteFileIfExists(path);
    }
  }
  *out = std::move(lsm);
  return Status::OK();
}

std::string LsmBTree::ComponentPath(uint64_t id) const {
  return dir_ + "/c" + std::to_string(id) + ".btree";
}

Status LsmBTree::WriteCurrent(const char* fault_point) {
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail(fault_point));
  std::string manifest;
  for (uint64_t id : component_ids_) {
    manifest += std::to_string(id);
    manifest += '\n';
  }
  return WriteStringToFileAtomic(dir_ + "/" + kCurrentFile, manifest);
}

Status LsmBTree::Write(const Slice& key, const Slice& value, bool tombstone) {
  if (inserts_ != nullptr) inserts_->Increment();
  std::string stored;
  stored.reserve(value.size() + 1);
  stored.push_back(tombstone ? kTombstoneMarker : kPutMarker);
  stored.append(value.data(), value.size());

  auto [it, inserted] =
      memtable_.insert_or_assign(key.ToString(), std::move(stored));
  if (inserted) {
    memtable_bytes_ += key.size() + it->second.size() + 64;  // map overhead
  }
  if (tombstone) ++tombstones_;
  if (memtable_bytes_ > memtable_budget_) {
    PREGELIX_RETURN_NOT_OK(FlushMemtable());
  }
  return Status::OK();
}

Status LsmBTree::Upsert(const Slice& key, const Slice& value) {
  return Write(key, value, /*tombstone=*/false);
}

Status LsmBTree::Delete(const Slice& key) {
  return Write(key, Slice(), /*tombstone=*/true);
}

Status LsmBTree::Get(const Slice& key, std::string* value) {
  if (probes_ != nullptr) probes_->Increment();
  auto it = memtable_.find(key.ToString());
  if (it != memtable_.end()) {
    if (it->second[0] == kTombstoneMarker) return Status::NotFound();
    value->assign(it->second.data() + 1, it->second.size() - 1);
    return Status::OK();
  }
  for (const auto& component : components_) {
    std::string stored;
    Status s = component->Get(key, &stored);
    if (s.IsNotFound()) continue;
    PREGELIX_RETURN_NOT_OK(s);
    if (stored[0] == kTombstoneMarker) return Status::NotFound();
    value->assign(stored.data() + 1, stored.size() - 1);
    return Status::OK();
  }
  return Status::NotFound();
}

Status LsmBTree::FlushMemtable() {
  // At most one deferred flush in flight; completing the previous one first
  // keeps the CURRENT commit order identical to the sync path.
  PREGELIX_RETURN_NOT_OK(CompletePendingFlush());
  if (memtable_.empty()) return Status::OK();
  TraceSpan span(cache_->tracer(), "lsm.flush_memtable", trace_cat::kStorage,
                 cache_->worker_id());
  span.AddArg("entries", static_cast<int64_t>(memtable_.size()));
  span.AddArg("bytes", static_cast<int64_t>(memtable_bytes_));
  const uint64_t id = next_component_id_++;
  std::unique_ptr<BTree> component;
  PREGELIX_RETURN_NOT_OK(BTree::Open(cache_, ComponentPath(id), &component));
  std::unique_ptr<IndexBulkLoader> loader = component->NewBulkLoader();
  uint64_t entry_bytes = 0;
  for (const auto& [key, stored] : memtable_) {
    entry_bytes += key.size() + stored.size();
    PREGELIX_RETURN_NOT_OK(loader->Add(key, stored));
  }
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("lsm.flush"));
  PREGELIX_RETURN_NOT_OK(loader->Finish());
  if (overlap_ != nullptr) {
    // Deferred durability (DESIGN.md §19): the component is readable through
    // the cache right away, so it joins the stack now; its dirty pages are
    // flushed on the write-behind thread and CURRENT commits when
    // CompletePendingFlush resolves the ticket. Entries are parked for
    // rollback — on failure they rejoin the memtable (newer writes win).
    BTree* raw = component.get();
    components_.insert(components_.begin(), std::move(component));
    component_ids_.insert(component_ids_.begin(), id);
    pending_mem_ = std::move(memtable_);
    memtable_.clear();
    memtable_bytes_ = 0;
    flush_pending_ = true;
    WorkerMetrics* metrics = cache_->metrics();
    overlap_->writebehind().Enqueue(
        &pending_ticket_, entry_bytes, [raw, metrics, entry_bytes]() {
          PREGELIX_RETURN_NOT_OK(fault::MaybeFail("io.writebehind.flush"));
          PREGELIX_RETURN_NOT_OK(raw->Flush());
          if (metrics != nullptr) metrics->AddOverlapIo(entry_bytes);
          return Status::OK();
        });
    if (static_cast<int>(components_.size()) > kMaxComponents) {
      PREGELIX_RETURN_NOT_OK(MergeAll());
    }
    return Status::OK();
  }
  // Make the component durable before committing it: CURRENT must never
  // reference pages still sitting dirty in the cache. On any failure before
  // the commit the memtable stays intact (a retry re-flushes everything)
  // and the half-built file is an orphan that reopen deletes.
  PREGELIX_RETURN_NOT_OK(component->Flush());
  components_.insert(components_.begin(), std::move(component));
  component_ids_.insert(component_ids_.begin(), id);
  Status commit = WriteCurrent("lsm.flush.commit");
  if (!commit.ok()) {
    Status d = components_.front()->Destroy();
    (void)d;  // best effort: reopen also sweeps orphans
    components_.erase(components_.begin());
    component_ids_.erase(component_ids_.begin());
    return commit;
  }
  memtable_.clear();
  memtable_bytes_ = 0;
  if (static_cast<int>(components_.size()) > kMaxComponents) {
    PREGELIX_RETURN_NOT_OK(MergeAll());
  }
  return Status::OK();
}

Status LsmBTree::CompletePendingFlush() {
  if (!flush_pending_) return Status::OK();
  flush_pending_ = false;
  Status flushed = overlap_->writebehind().WaitTicket(&pending_ticket_);
  Status commit =
      flushed.ok() ? WriteCurrent("lsm.flush.commit") : std::move(flushed);
  if (!commit.ok()) {
    // Drop the uncommitted component and return its entries to the
    // memtable; entries written since the flush started are newer and win.
    // The half-flushed file is an orphan reopen sweeps.
    Status d = components_.front()->Destroy();
    (void)d;
    components_.erase(components_.begin());
    component_ids_.erase(component_ids_.begin());
    for (auto& [key, stored] : pending_mem_) {
      auto [it, inserted] = memtable_.emplace(key, std::move(stored));
      if (inserted) {
        memtable_bytes_ += it->first.size() + it->second.size() + 64;
      }
    }
    pending_mem_.clear();
    return commit;
  }
  pending_mem_.clear();
  return Status::OK();
}

Status LsmBTree::MergeAll() {
  // A full merge includes the in-memory component, so tombstones can be
  // dropped and the entry count becomes exact afterwards. (FlushMemtable
  // re-enters MergeAll only when the stack is deep; by then the memtable is
  // empty, so the recursion terminates immediately.)
  PREGELIX_RETURN_NOT_OK(CompletePendingFlush());
  if (!memtable_.empty()) {
    const size_t saved = components_.size();
    (void)saved;
    PREGELIX_RETURN_NOT_OK(FlushMemtable());
    PREGELIX_RETURN_NOT_OK(CompletePendingFlush());
  }
  if (components_.size() <= 1) {
    tombstones_ = 0;
    return Status::OK();
  }
  TraceSpan span(cache_->tracer(), "lsm.merge", trace_cat::kStorage,
                 cache_->worker_id());
  span.AddArg("components", static_cast<int64_t>(components_.size()));
  // K-way merge of component iterators, newest component wins per key.
  struct Cursor {
    std::unique_ptr<IndexIterator> it;
    int priority;  // lower = newer
  };
  std::vector<Cursor> cursors;
  cursors.reserve(components_.size());
  for (size_t i = 0; i < components_.size(); ++i) {
    Cursor c{components_[i]->NewIterator(), static_cast<int>(i)};
    PREGELIX_RETURN_NOT_OK(c.it->SeekToFirst());
    cursors.push_back(std::move(c));
  }

  const uint64_t merged_id = next_component_id_++;
  std::unique_ptr<BTree> merged;
  PREGELIX_RETURN_NOT_OK(BTree::Open(cache_, ComponentPath(merged_id), &merged));
  std::unique_ptr<IndexBulkLoader> loader = merged->NewBulkLoader();

  for (;;) {
    // Find the smallest key among valid cursors; ties go to the newest.
    int best = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (!cursors[i].it->Valid()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const int cmp = cursors[i].it->key().compare(cursors[best].it->key());
      if (cmp < 0 ||
          (cmp == 0 && cursors[i].priority < cursors[best].priority)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    const std::string key = cursors[best].it->key().ToString();
    const std::string stored = cursors[best].it->value().ToString();
    // Advance every cursor past this key (drops older duplicates).
    for (auto& cursor : cursors) {
      while (cursor.it->Valid() && cursor.it->key() == Slice(key)) {
        PREGELIX_RETURN_NOT_OK(cursor.it->Next());
      }
    }
    if (!stored.empty() && stored[0] == kTombstoneMarker) {
      continue;  // fully merged: tombstones can be dropped
    }
    PREGELIX_RETURN_NOT_OK(loader->Add(key, stored));
  }
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("lsm.merge"));
  PREGELIX_RETURN_NOT_OK(loader->Finish());
  PREGELIX_RETURN_NOT_OK(merged->Flush());

  // Commit: CURRENT flips to the merged component alone, *then* the old
  // components are deleted. A crash before the flip keeps the old stack
  // (merged file becomes an orphan); a crash after it keeps only the merged
  // component (the stale files become orphans). Neither order loses keys or
  // resurrects tombstoned ones.
  cursors.clear();
  std::vector<std::unique_ptr<BTree>> old = std::move(components_);
  std::vector<uint64_t> old_ids = std::move(component_ids_);
  components_.clear();
  components_.push_back(std::move(merged));
  component_ids_.assign(1, merged_id);
  Status commit = WriteCurrent("lsm.merge.commit");
  if (!commit.ok()) {
    // Roll back in memory; the merged file is an orphan for reopen to sweep.
    Status d = components_.front()->Destroy();
    (void)d;
    components_ = std::move(old);
    component_ids_ = std::move(old_ids);
    return commit;
  }
  for (auto& component : old) {
    PREGELIX_RETURN_NOT_OK(component->Destroy());
  }
  tombstones_ = 0;
  return Status::OK();
}

uint64_t LsmBTree::num_entries() const {
  uint64_t n = 0;
  for (const auto& component : components_) n += component->num_entries();
  n += memtable_.size();
  return n > tombstones_ ? n - tombstones_ : 0;
}

Status LsmBTree::Flush() {
  PREGELIX_RETURN_NOT_OK(FlushMemtable());
  PREGELIX_RETURN_NOT_OK(CompletePendingFlush());
  for (auto& component : components_) {
    PREGELIX_RETURN_NOT_OK(component->Flush());
  }
  return Status::OK();
}

Status LsmBTree::Destroy() {
  destroyed_ = true;
  if (flush_pending_) {
    flush_pending_ = false;
    Status s = overlap_->writebehind().WaitTicket(&pending_ticket_);
    (void)s;  // everything is being deleted anyway
    pending_mem_.clear();
  }
  Status result;
  for (auto& component : components_) {
    Status s = component->Destroy();
    if (!s.ok() && result.ok()) result = s;
  }
  components_.clear();
  component_ids_.clear();
  memtable_.clear();
  DeleteFileIfExists(dir_ + "/" + kCurrentFile);
  return result;
}

// ---------------------------------------------------------------------------
// Iterator: merge of memtable + disk components with tombstone suppression.

class LsmIterator : public IndexIterator {
 public:
  explicit LsmIterator(LsmBTree* lsm) : lsm_(lsm) {}

  Status SeekToFirst() override {
    mem_it_ = lsm_->memtable_.begin();
    disk_.clear();
    for (auto& component : lsm_->components_) {
      disk_.push_back(component->NewIterator());
      PREGELIX_RETURN_NOT_OK(disk_.back()->SeekToFirst());
    }
    return FindNext();
  }

  Status Seek(const Slice& target) override {
    mem_it_ = lsm_->memtable_.lower_bound(target.ToString());
    disk_.clear();
    for (auto& component : lsm_->components_) {
      disk_.push_back(component->NewIterator());
      PREGELIX_RETURN_NOT_OK(disk_.back()->Seek(target));
    }
    return FindNext();
  }

  bool Valid() const override { return valid_; }

  Status Next() override { return FindNext(); }

  Slice key() const override { return key_; }
  Slice value() const override { return value_; }

 private:
  /// Emits the next live (non-tombstoned) entry in key order.
  Status FindNext() {
    valid_ = false;
    for (;;) {
      // Smallest key across memtable and disk cursors; memtable is newest.
      const std::string* best_key = nullptr;
      int best_disk = -1;  // -1 = memtable
      std::string mem_key;
      if (mem_it_ != lsm_->memtable_.end()) {
        mem_key = mem_it_->first;
        best_key = &mem_key;
      }
      std::string disk_key;
      for (size_t i = 0; i < disk_.size(); ++i) {
        if (!disk_[i]->Valid()) continue;
        const Slice k = disk_[i]->key();
        if (best_key == nullptr || k.compare(Slice(*best_key)) < 0) {
          disk_key = k.ToString();
          best_key = &disk_key;
          best_disk = static_cast<int>(i);
        }
      }
      if (best_key == nullptr) return Status::OK();  // exhausted

      const std::string current = *best_key;
      std::string stored;
      if (best_disk < 0) {
        stored = mem_it_->second;
      } else {
        stored = disk_[best_disk]->value().ToString();
      }
      // Advance all cursors past `current`.
      if (mem_it_ != lsm_->memtable_.end() && mem_it_->first == current) {
        ++mem_it_;
      }
      for (auto& it : disk_) {
        while (it->Valid() && it->key() == Slice(current)) {
          PREGELIX_RETURN_NOT_OK(it->Next());
        }
      }
      if (!stored.empty() && stored[0] == 1) {
        continue;  // tombstone
      }
      key_ = current;
      value_.assign(stored.data() + 1, stored.size() - 1);
      valid_ = true;
      return Status::OK();
    }
  }

  LsmBTree* lsm_;
  std::map<std::string, std::string>::const_iterator mem_it_;
  std::vector<std::unique_ptr<IndexIterator>> disk_;
  bool valid_ = false;
  std::string key_;
  std::string value_;
};

std::unique_ptr<IndexIterator> LsmBTree::NewIterator() {
  return std::make_unique<LsmIterator>(this);
}

// ---------------------------------------------------------------------------
// Bulk load

class LsmBulkLoader : public IndexBulkLoader {
 public:
  LsmBulkLoader(LsmBTree* lsm, uint64_t id, std::unique_ptr<BTree> component,
                std::unique_ptr<IndexBulkLoader> inner)
      : lsm_(lsm),
        id_(id),
        component_(std::move(component)),
        inner_(std::move(inner)) {}

  Status Add(const Slice& key, const Slice& value) override {
    std::string stored;
    stored.reserve(value.size() + 1);
    stored.push_back(0);
    stored.append(value.data(), value.size());
    return inner_->Add(key, stored);
  }

  Status Finish() override {
    // A pending deferred flush must commit first: this WriteCurrent lists
    // every component id, and CURRENT must never reference a component
    // whose pages are not yet durable.
    PREGELIX_RETURN_NOT_OK(lsm_->CompletePendingFlush());
    PREGELIX_RETURN_NOT_OK(inner_->Finish());
    PREGELIX_RETURN_NOT_OK(component_->Flush());
    lsm_->components_.insert(lsm_->components_.begin(), std::move(component_));
    lsm_->component_ids_.insert(lsm_->component_ids_.begin(), id_);
    Status commit = lsm_->WriteCurrent("lsm.flush.commit");
    if (!commit.ok()) {
      Status d = lsm_->components_.front()->Destroy();
      (void)d;
      lsm_->components_.erase(lsm_->components_.begin());
      lsm_->component_ids_.erase(lsm_->component_ids_.begin());
    }
    return commit;
  }

 private:
  LsmBTree* lsm_;
  uint64_t id_;
  std::unique_ptr<BTree> component_;
  std::unique_ptr<IndexBulkLoader> inner_;
};

std::unique_ptr<IndexBulkLoader> LsmBTree::NewBulkLoader() {
  const uint64_t id = next_component_id_++;
  std::unique_ptr<BTree> component;
  Status s = BTree::Open(cache_, ComponentPath(id), &component);
  PREGELIX_CHECK(s.ok()) << s.ToString();
  std::unique_ptr<IndexBulkLoader> inner = component->NewBulkLoader();
  return std::make_unique<LsmBulkLoader>(this, id, std::move(component),
                                         std::move(inner));
}

}  // namespace pregelix
