#ifndef PREGELIX_STORAGE_LSM_BTREE_H_
#define PREGELIX_STORAGE_LSM_BTREE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_cache.h"
#include "common/slice.h"
#include "common/status.h"
#include "io/overlap.h"
#include "storage/btree.h"
#include "storage/index.h"

namespace pregelix {

/// Log-structured merge B-tree (paper Section 4): an in-memory component
/// absorbs updates; when it exceeds its budget it is bulk-loaded into an
/// immutable on-disk B-tree component (sequential I/O); lookups consult
/// components newest-first; deletes are tombstones; a full merge collapses
/// the component stack when it grows past a threshold.
///
/// Chosen for workloads whose vertex data changes size drastically across
/// supersteps or that mutate the graph heavily (e.g., genome path merging),
/// where in-place B-tree updates would churn (paper Section 5.2).
class LsmBTree : public OrderedIndex {
 public:
  /// `dir` holds the component files; `memtable_budget_bytes` bounds the
  /// in-memory component (the paper pins buffer pages for it; we account
  /// heap bytes against the same budget).
  static Status Open(BufferCache* cache, const std::string& dir,
                     size_t memtable_budget_bytes,
                     std::unique_ptr<LsmBTree>* out);
  /// Overlap-aware variant (DESIGN.md §19): with a non-null `overlap`, a
  /// memtable flush builds the new component foreground (it is immediately
  /// readable through the cache) but defers the durability flush to the
  /// write-behind queue; the CURRENT commit happens when the next flush,
  /// merge, Flush(), Destroy(), or close completes the pending ticket. At
  /// most one flush is in flight, so commit order matches the sync path.
  static Status Open(BufferCache* cache, const std::string& dir,
                     size_t memtable_budget_bytes, OverlapRuntime* overlap,
                     std::unique_ptr<LsmBTree>* out);
  ~LsmBTree() override;

  Status Upsert(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Status Get(const Slice& key, std::string* value) override;
  std::unique_ptr<IndexIterator> NewIterator() override;
  Status Flush() override;

  /// Estimated live entries (exact after a full merge; between merges the
  /// estimate may double-count overwritten keys). The Pregelix runtime
  /// keeps its own exact vertex counts.
  uint64_t num_entries() const override;

  /// Sorted-input fast path: loads directly into one disk component.
  std::unique_ptr<IndexBulkLoader> NewBulkLoader();

  Status Destroy();

  /// Forces the memtable to disk (also triggered by the budget).
  Status FlushMemtable();
  /// Merges all disk components into one.
  Status MergeAll();

  int num_disk_components() const {
    return static_cast<int>(components_.size());
  }

  /// Components beyond this trigger MergeAll on the next flush.
  static constexpr int kMaxComponents = 4;

 private:
  friend class LsmIterator;
  friend class LsmBulkLoader;

  LsmBTree(BufferCache* cache, std::string dir, size_t budget);

  Status Write(const Slice& key, const Slice& value, bool tombstone);
  std::string ComponentPath(uint64_t id) const;

  /// Waits for the in-flight deferred flush (if any) and commits it to
  /// CURRENT; on failure the uncommitted component is dropped and its
  /// entries return to the memtable (entries written since stay newer and
  /// win). No-op in sync mode.
  Status CompletePendingFlush();

  /// Atomically rewrites the CURRENT manifest to list `component_ids_`
  /// (newest first). This is the commit point of flush/merge/bulk-load: a
  /// component not listed in CURRENT does not exist after reopen.
  /// `fault_point` names the injection point evaluated before the write.
  Status WriteCurrent(const char* fault_point);

  BufferCache* cache_;
  // Cached registry counters (null without an attached registry). Labeled
  // storage_tier=lsm; the component B-trees count their own probes.
  Counter* probes_ = nullptr;
  Counter* inserts_ = nullptr;
  std::string dir_;
  size_t memtable_budget_;
  size_t memtable_bytes_ = 0;

  /// Entries carry a 1-byte marker prefix: 0 = put, 1 = tombstone.
  std::map<std::string, std::string> memtable_;
  /// Disk components, newest first. `component_ids_` is kept in lockstep
  /// and backs the CURRENT manifest.
  std::vector<std::unique_ptr<BTree>> components_;
  std::vector<uint64_t> component_ids_;
  uint64_t next_component_id_ = 0;
  uint64_t tombstones_ = 0;
  bool destroyed_ = false;

  // Deferred-flush state (null overlap_ = strictly synchronous flushes).
  // While a flush is pending, its component sits uncommitted at the front
  // of components_ (readable through the cache) and its entries are parked
  // in pending_mem_ for rollback.
  OverlapRuntime* overlap_ = nullptr;
  WriteBehindQueue::Ticket pending_ticket_;
  std::map<std::string, std::string> pending_mem_;
  bool flush_pending_ = false;
};

}  // namespace pregelix

#endif  // PREGELIX_STORAGE_LSM_BTREE_H_
