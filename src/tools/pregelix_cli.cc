// pregelix: command-line driver for the built-in algorithm library.
//
// A downstream user's entry point — generate or sample graphs, inspect them,
// and run any built-in vertex program with the paper's physical plan hints,
// without writing C++ (the analog of the Pregelix jar's Client.run).
//
//   pregelix generate --dfs=/tmp/d --type=webmap --vertices=20000 --out=web
//   pregelix stats    --dfs=/tmp/d --input=web
//   pregelix run      --dfs=/tmp/d --algorithm=pagerank --input=web
//                     --output=ranks --workers=4 --join=fullouter --stats
//   pregelix sample   --dfs=/tmp/d --input=web --out=web-small --vertices=2000
//
// Run with no arguments for full usage.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "algorithms/algorithms.h"
#include "common/crash_dump.h"
#include "common/event_journal.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/temp_dir.h"
#include "common/time_ledger.h"
#include "common/trace.h"
#include "server/server.h"
#include "dataflow/cluster.h"
#include "dataflow/plan_verifier.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/sampler.h"
#include "pregel/plans.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values.find(key);
    return it == values.end() ? def : std::stoll(it->second);
  }
  bool Has(const std::string& key) const { return values.count(key) > 0; }
};

/// Parses the physical plan hint flags into `job` (shared by run, explain,
/// and verify).
void ApplyPlanFlags(const Flags& flags, PregelixJobConfig* job) {
  const std::string join = flags.Get("join", "fullouter");
  job->join = join == "leftouter" ? JoinStrategy::kLeftOuter
              : join == "adaptive" ? JoinStrategy::kAdaptive
              : join == "auto"     ? JoinStrategy::kAuto
                                   : JoinStrategy::kFullOuter;
  const std::string groupby = flags.Get("groupby", "sort");
  job->groupby = groupby == "hashsort" ? GroupByStrategy::kHashSort
                 : groupby == "auto"   ? GroupByStrategy::kAuto
                                       : GroupByStrategy::kSort;
  const std::string connector = flags.Get("connector", "unmerged");
  job->groupby_connector = connector == "merged" ? GroupByConnector::kMerged
                           : connector == "auto" ? GroupByConnector::kAuto
                                                 : GroupByConnector::kUnmerged;
  const std::string storage = flags.Get("storage", "btree");
  job->storage = storage == "lsm"    ? VertexStorage::kLsmBTree
                 : storage == "auto" ? VertexStorage::kAuto
                                     : VertexStorage::kBTree;
}

/// Parses --overlap=on|off|auto into the cluster config (DESIGN.md §19).
/// kAuto (the default) currently enables the overlap runtime; kOff is the
/// phase-serial baseline.
void ApplyOverlapFlag(const Flags& flags, ClusterConfig* config) {
  const std::string overlap = flags.Get("overlap", "auto");
  config->overlap = overlap == "off"  ? OverlapMode::kOff
                    : overlap == "on" ? OverlapMode::kOn
                                      : OverlapMode::kAuto;
}

/// Builds the type-erased adapter for a typed vertex program; the deleter's
/// capture keeps the typed program alive as long as the adapter.
template <typename Program, typename... Args>
std::shared_ptr<PregelProgram> OwnAdapter(Args&&... args) {
  auto program = std::make_shared<Program>(std::forward<Args>(args)...);
  auto* adapter = new typename Program::Adapter(program.get());
  return std::shared_ptr<PregelProgram>(
      adapter, [program](PregelProgram* p) { delete p; });
}

/// Resolves an algorithm name (plus its --source/--iterations parameters)
/// into a self-owning program adapter.
Status MakeAlgorithmAdapter(const Flags& flags, const std::string& algorithm,
                            std::shared_ptr<PregelProgram>* out) {
  const int64_t source = flags.GetInt("source", 0);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 10));
  if (algorithm == "pagerank") {
    *out = OwnAdapter<PageRankProgram>(iterations);
  } else if (algorithm == "sssp") {
    *out = OwnAdapter<SsspProgram>(source);
  } else if (algorithm == "cc") {
    *out = OwnAdapter<ConnectedComponentsProgram>();
  } else if (algorithm == "reachability") {
    *out = OwnAdapter<ReachabilityProgram>(source);
  } else if (algorithm == "triangles") {
    *out = OwnAdapter<TriangleCountProgram>();
  } else if (algorithm == "cliques") {
    *out = OwnAdapter<MaximalCliquesProgram>();
  } else if (algorithm == "bfs-tree") {
    *out = OwnAdapter<BfsTreeProgram>(source);
  } else if (algorithm == "scc") {
    *out = OwnAdapter<SccProgram>();
  } else {
    return Status::InvalidArgument("unknown --algorithm=" + algorithm);
  }
  return Status::OK();
}

int Usage() {
  printf(R"(pregelix — Pregel graph analytics on a dataflow engine

usage: pregelix <command> --dfs=<root-dir> [flags]

commands:
  generate   create a synthetic graph
      --type=webmap|btc         degree profile (directed power-law / undirected)
      --vertices=N              vertex count
      --degree=D                average degree (default 8.0 / 8.94)
      --out=DIR                 DFS-relative output directory
      --parts=P                 part files (default 4)
      --seed=S                  deterministic seed (default 42)
  scaleup    copy+renumber an existing graph (Table 4 recipe)
      --input=DIR --out=DIR --factor=K [--parts=P]
  sample     random-walk down-sample (Table 3 recipe)
      --input=DIR --out=DIR --vertices=N [--parts=P] [--seed=S]
  stats      print vertex/edge/size statistics of a graph directory
      --input=DIR
  run        execute a built-in algorithm
      --algorithm=pagerank|sssp|cc|reachability|triangles|cliques|bfs-tree|scc
      --input=DIR [--output=DIR]
      --workers=N               simulated worker machines (default 4)
      --worker-ram-mb=M         simulated RAM per worker (default 16)
      --join=fullouter|leftouter|adaptive|auto   (default fullouter)
      --groupby=sort|hashsort|auto               (default sort)
      --connector=unmerged|merged|auto           (default unmerged)
      --storage=btree|lsm|auto                   (default btree)
      --overlap=on|off|auto     overlapped superstep pipeline: prefetched run
                                reads, write-behind spills/snapshots, eager
                                shuffle group-by (auto = on; off = the
                                phase-serial baseline)
                                `auto` lets the feedback-driven plan
                                optimizer re-choose per superstep (storage:
                                once at admission)
      --source=ID               source vertex (sssp/reachability/bfs-tree)
      --iterations=K            PageRank iterations (default 10)
      --checkpoint-interval=K   checkpoint every K supersteps (default off)
      --max-supersteps=K        safety bound (default 1000)
      --stats                   print per-superstep statistics
      --profile                 collect per-operator plan profiles (see explain)
      --stall-factor=F          warn when a superstep exceeds F x the trailing
                                mean wall time (default 4, <=0 disables)
      --time-ledger=on|off      worker time ledger: attribute all wall time of
                                engine threads to a closed category set with a
                                conservation check (default on; see /profilez
                                and explain --time-ledger)
      --verify                  statically verify the job's physical plans
                                (structure, declared stream properties,
                                memory budgets) and abort before running if
                                any is invalid; add --all-plans to also
                                check every plan the optimizer could switch
                                to
      --trace-out=FILE          write a Chrome trace_event JSON (open in
                                chrome://tracing or ui.perfetto.dev)
      --metrics-json=FILE       write the metrics registry as JSON
      --metrics-prom=FILE       write the metrics registry in Prometheus
                                text exposition format
      --admin-port=N            serve live /metrics, /jobs, /events over HTTP
                                on 127.0.0.1:N while the job runs (0 picks an
                                ephemeral port; printed on startup)
      --events-out=FILE         spill every structured journal event as one
                                JSONL line (also flushed on abnormal exit)
  explain    run an algorithm with EXPLAIN ANALYZE: all `run` flags, plus an
             annotated plan tree (per-operator tuple/frame/byte counts, wall
             time, memory high-water marks, spills, worker skew, critical
             path) in the paper's operator vocabulary
      --top=K                   show the K hottest operators (default 3)
      --profile-json=FILE       export the cumulative plan profile as JSON
                                (timing-free: byte-identical across runs)
      --time-ledger             append the worker time-ledger rollup: category
                                totals, per-operator time and io-wait, and the
                                hottest contended locks (DESIGN.md section 20)
  verify     static plan verification without running anything (no --dfs or
             input graph needed): builds the load/superstep/dump/checkpoint/
             recovery plans the flags select and checks structure, declared
             stream properties, and memory-budget feasibility (DESIGN.md §18)
      --algorithm=NAME          vertex program (default pagerank)
      --workers=N --worker-ram-mb=M   budgets to verify against
      --join/--groupby/--connector/--storage   plan hints, as for run
      --configured-only         check only the configured plan; the default
                                sweeps every join x group-by x connector
                                combination the optimizer could switch to
  serve      standalone observability server (no --dfs needed): serves the
             process-global metrics registry, job table, and event journal
      --admin-port=N            listen port (default 9090; 0 = ephemeral)
      --serve-seconds=S         exit after S seconds (default 0 = forever)

global flags:
      --log-level=debug|info|warn|error   minimum log level (overrides the
                                PREGELIX_LOG_LEVEL environment variable)
)");
  return 2;
}

/// `explain --time-ledger`: where every attached engine-thread nanosecond
/// went (DESIGN.md section 20) — category totals with shares, per-operator
/// time and io-wait, the hottest contended locks, and the conservation
/// residue. The same totals /profilez and the Prometheus exposition report.
void PrintTimeLedger() {
  const TimeLedgerSnapshot snap = TimeLedger::Global().TakeSnapshot();
  printf("\n== time ledger ==\n");
  printf("attached thread time %.3f s over %zu cells; unattributed %lld ns, "
         "guard misuse %lld\n",
         static_cast<double>(snap.elapsed_ns) / 1e9, snap.cells.size(),
         static_cast<long long>(snap.unattributed_ns),
         static_cast<long long>(snap.misuse_count));

  const double attributed = static_cast<double>(snap.attributed_ns());
  printf("%-14s %12s %7s\n", "category", "seconds", "share");
  for (int c = 0; c < kNumTimeCategories; ++c) {
    if (snap.category_ns[c] == 0) continue;
    printf("%-14s %12.6f %6.1f%%\n", kTimeCategoryNames[c],
           static_cast<double>(snap.category_ns[c]) / 1e9,
           attributed == 0
               ? 0.0
               : 100.0 * static_cast<double>(snap.category_ns[c]) /
                     attributed);
  }

  // Labeled cells are executor task threads named by operator; unlabeled
  // ones (pool workers, the driver) are skipped here — the category table
  // above already covers them.
  std::map<std::string, int64_t> op_total;
  for (const TimeLedgerSnapshot::Cell& cell : snap.cells) {
    if (cell.label.empty()) continue;
    int64_t total = 0;
    for (int64_t ns : cell.ns) total += ns;
    op_total[cell.label] += total;
  }
  if (!op_total.empty()) {
    const std::map<std::string, int64_t> op_io_wait =
        snap.ByLabel(TimeCategory::kIoWait);
    printf("\n%-28s %12s %12s\n", "operator", "seconds", "io-wait-s");
    for (const auto& [label, total_ns] : op_total) {
      const auto it = op_io_wait.find(label);
      printf("%-28s %12.6f %12.6f\n", label.c_str(),
             static_cast<double>(total_ns) / 1e9,
             it == op_io_wait.end()
                 ? 0.0
                 : static_cast<double>(it->second) / 1e9);
    }
  }

  if (!snap.locks.empty()) {
    printf("\n%-20s %12s %10s\n", "lock", "wait-s", "contended");
    size_t shown = 0;
    for (const TimeLedgerSnapshot::LockWait& l : snap.locks) {
      if (++shown > 10) break;
      printf("%-20s %12.6f %10lld\n", l.name.c_str(),
             static_cast<double>(l.ns) / 1e9,
             static_cast<long long>(l.count));
    }
  }
}

/// The `pregelix explain` report: annotated cumulative plan tree, the
/// hottest operators, a per-superstep rollup, and the optional
/// deterministic JSON export.
Status PrintExplain(const Flags& flags, const JobResult& result) {
  if (result.plan_profile == nullptr) {
    return Status::InvalidArgument("explain: no plan profile was collected");
  }
  const PlanProfile& profile = *result.plan_profile;

  std::ostringstream tree;
  profile.RenderTree(tree);
  printf("\n== EXPLAIN ANALYZE: cumulative superstep plan ==\n%s",
         tree.str().c_str());

  const int top_k = static_cast<int>(flags.GetInt("top", 3));
  const std::vector<int> top = profile.TopByWall(top_k);
  if (!top.empty()) {
    printf("\n== top %zu operators by wall time ==\n", top.size());
    for (size_t rank = 0; rank < top.size(); ++rank) {
      const PlanOperatorProfile& op = profile.ops()[top[rank]];
      const double share =
          profile.wall_ns() == 0
              ? 0.0
              : 100.0 * static_cast<double>(op.total.wall_ns) /
                    static_cast<double>(profile.wall_ns());
      printf("%2zu. %-28s %9.3f ms  (%5.1f%% of plan wall, skew %.2fx%s)\n",
             rank + 1, op.name.c_str(),
             static_cast<double>(op.total.wall_ns) / 1e6, share, op.skew,
             op.on_critical_path ? ", on critical path" : "");
    }
  }

  printf("\n== per-superstep rollup ==\n");
  printf("%-10s %-5s %-9s %-9s %-10s %-10s %-10s %-14s %-9s %-7s\n",
         "superstep", "join", "groupby", "connector", "wall-ms", "live",
         "messages", "shuffled-bytes", "cache-hit", "spills");
  for (const SuperstepStats& s : result.superstep_stats) {
    printf(
        "%-10lld %-5s %-9s %-9s %-10.3f %-10lld %-10lld %-14llu %-9.1f "
        "%-7llu\n",
        static_cast<long long>(s.superstep),
        s.used_left_outer_join ? "LOJ" : "FOJ",
        GroupByStrategyName(s.groupby_used),
        GroupByConnectorName(s.connector_used), s.wall_seconds * 1e3,
        static_cast<long long>(s.live_vertices),
        static_cast<long long>(s.messages),
        static_cast<unsigned long long>(s.bytes_shuffled),
        s.cache_hit_ratio * 100.0,
        static_cast<unsigned long long>(s.spill_count));
  }

  // The optimizer's trail: one line per superstep whose plan differed from
  // the previous one (the decision journal `plan.switch` mirrors this).
  int64_t switches = 0;
  for (const PlanDecisionRecord& r : result.plan_decisions) {
    if (!r.switched.empty()) ++switches;
  }
  printf("\n== plan decisions (%zu supersteps, %lld switches) ==\n",
         result.plan_decisions.size(), static_cast<long long>(switches));
  for (const PlanDecisionRecord& r : result.plan_decisions) {
    if (r.switched.empty()) continue;
    printf("superstep %-4lld -> %-26s switched=%s reason=%s%s\n",
           static_cast<long long>(r.superstep),
           PlanDecisionString(r.plan).c_str(), r.switched.c_str(),
           r.reason.c_str(), r.reactive ? " (reactive)" : "");
  }

  const std::string json_path = flags.Get("profile-json");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot open profile output " + json_path);
    }
    // Timing-free export: byte-identical across runs of the same job.
    profile.WriteJson(out, /*include_timing=*/false);
    out << "\n";
    out.close();
    if (!out.good()) return Status::IoError("short write to " + json_path);
    printf("\nplan profile in %s\n", json_path.c_str());
  }
  if (flags.Has("time-ledger") && flags.Get("time-ledger") != "off") {
    PrintTimeLedger();
  }
  return Status::OK();
}

/// Static plan audit (DESIGN.md §18): builds every physical plan the job
/// can produce — load, superstep (the configured plan, or with `all_plans`
/// every join x group-by x connector combination the optimizer could ever
/// switch to), dump, checkpoint, recovery — and runs the plan verifier over
/// each without executing anything. Prints one line per clean plan and the
/// full compiler-style diagnostic per rejected one.
Status VerifyJobPlans(SimulatedCluster* cluster, DistributedFileSystem* dfs,
                      const PregelixJobConfig& base_job,
                      PregelProgram* program, bool all_plans) {
  JobRuntimeContext ctx;
  PregelixJobConfig job = base_job;
  ctx.program = program;
  ctx.job_config = &job;
  ctx.cluster = cluster;
  ctx.dfs = dfs;
  ctx.job_id = "verify";
  ctx.current_superstep = 1;

  const PlanVerifyOptions vopts = PlanVerifyOptionsFrom(cluster->config());
  int checked = 0;
  int failed = 0;
  auto check = [&](const std::string& label, const JobSpec& spec) {
    ++checked;
    const PlanVerifyResult verdict = VerifyPlan(spec, vopts);
    if (verdict.ok()) {
      printf("verify %-44s OK (%zu ops, %zu connectors)\n", label.c_str(),
             spec.ops().size(), spec.connectors().size());
    } else {
      ++failed;
      printf("verify %-44s FAILED\n%s\n", label.c_str(),
             verdict.Render(spec.name()).c_str());
    }
  };
  auto check_superstep = [&]() {
    // BuildSuperstepJob resolves kAuto/kAdaptive knobs into ctx.current_*;
    // label with what was actually planned.
    const JobSpec spec = BuildSuperstepJob(&ctx);
    const PlanDecision d{ctx.current_join, ctx.current_groupby,
                         ctx.current_connector};
    check("superstep[" + PlanDecisionString(d) + "]", spec);
  };

  check("load", BuildLoadJob(&ctx));
  if (all_plans) {
    // The optimizer's full reachable plan space: any switchable combination
    // may become the next superstep's plan, so all of them must verify.
    for (JoinStrategy join :
         {JoinStrategy::kFullOuter, JoinStrategy::kLeftOuter}) {
      for (GroupByStrategy groupby :
           {GroupByStrategy::kSort, GroupByStrategy::kHashSort}) {
        for (GroupByConnector conn :
             {GroupByConnector::kUnmerged, GroupByConnector::kMerged}) {
          job.join = join;
          job.groupby = groupby;
          job.groupby_connector = conn;
          check_superstep();
        }
      }
    }
    job = base_job;
  } else {
    check_superstep();
  }
  check("dump", BuildDumpJob(&ctx));
  check("checkpoint", BuildCheckpointJob(&ctx, /*superstep=*/1));
  check("recovery", BuildRecoveryJob(&ctx, /*superstep=*/1));

  if (failed > 0) {
    return Status::InvalidArgument(std::to_string(failed) + " of " +
                                   std::to_string(checked) +
                                   " plans failed verification");
  }
  printf("verified %d plans: all OK\n", checked);
  return Status::OK();
}

/// `pregelix verify`: offline static analysis of the configured job's
/// physical plans against the configured cluster budgets. Builds the plans
/// exactly as `run` would but executes none of them, so it needs no input
/// graph and (unless --dfs is given) no DFS.
Status VerifyCommand(const Flags& flags) {
  TempDir scratch("pregelix-verify");
  DistributedFileSystem dfs(
      flags.Has("dfs") ? flags.Get("dfs") : scratch.Sub("dfs"));

  ClusterConfig config;
  config.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  config.worker_ram_bytes =
      static_cast<size_t>(flags.GetInt("worker-ram-mb", 16)) << 20;
  config.temp_root = scratch.Sub("cluster");
  ApplyOverlapFlag(flags, &config);
  SimulatedCluster cluster(config);

  PregelixJobConfig job;
  job.input_dir = flags.Get("input");
  job.output_dir = flags.Get("output");
  ApplyPlanFlags(flags, &job);
  const std::string algorithm = flags.Get("algorithm", "pagerank");
  job.name = "verify-" + algorithm;

  std::shared_ptr<PregelProgram> adapter;
  PREGELIX_RETURN_NOT_OK(MakeAlgorithmAdapter(flags, algorithm, &adapter));

  // `verify` defaults to the exhaustive sweep; --configured-only restricts
  // it to the plan the flags select (what `run --verify` checks).
  return VerifyJobPlans(&cluster, &dfs, job, adapter.get(),
                        /*all_plans=*/!flags.Has("configured-only"));
}

Status RunCommand(const Flags& flags, bool explain) {
  // Disable before any thread attaches: every guard, reattribution, and
  // lock-wait charge in the process becomes inert.
  if (flags.Get("time-ledger", "on") == "off") {
    TimeLedger::Global().SetEnabled(false);
  }
  DistributedFileSystem dfs(flags.Get("dfs"));
  TempDir scratch("pregelix-cli");

  ClusterConfig config;
  config.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  config.worker_ram_bytes =
      static_cast<size_t>(flags.GetInt("worker-ram-mb", 16)) << 20;
  config.temp_root = scratch.Sub("cluster");
  ApplyOverlapFlag(flags, &config);
  const std::string trace_out = flags.Get("trace-out");
  const std::string metrics_json = flags.Get("metrics-json");
  const std::string metrics_prom = flags.Get("metrics-prom");
  const std::string events_out = flags.Get("events-out");
  // Deliberately leaked: the crash-dump exit hooks may fire after this
  // function (and main) return, and they read these objects.
  Tracer& tracer = *new Tracer();
  MetricsRegistry& registry = *new MetricsRegistry();
  if (!trace_out.empty()) {
    tracer.Enable();
    config.tracer = &tracer;
  }
  if (!metrics_json.empty() || !metrics_prom.empty()) {
    config.metrics_registry = &registry;
  }
  bool events_spilling = false;
  if (!events_out.empty()) {
    PREGELIX_RETURN_NOT_OK(EventJournal::Global().SetSpillPath(events_out));
    events_spilling = true;
  }
  if (!trace_out.empty() || !metrics_json.empty() || !metrics_prom.empty() ||
      !events_out.empty()) {
    // Flush observability output even when the process dies abnormally
    // (exit() mid-job or a PREGELIX_CHECK abort).
    crash_dump::Configure(&tracer, trace_out, &registry, metrics_json,
                          metrics_prom, &EventJournal::Global(), events_out,
                          events_spilling);
  }
  SimulatedCluster cluster(config);
  PregelixRuntime runtime(&cluster, &dfs);

  // Live observability: --admin-port serves /metrics, /jobs, /events from
  // this process while the job runs (DESIGN.md §15).
  std::unique_ptr<server::ObservabilityServer> admin;
  if (flags.Has("admin-port")) {
    server::ServerOptions opts;
    opts.port = static_cast<int>(flags.GetInt("admin-port", 0));
    opts.build_info = "pregelix run";
    admin = std::make_unique<server::ObservabilityServer>(
        opts, cluster.registry(), nullptr, nullptr);
    PREGELIX_RETURN_NOT_OK(admin->Start());
    admin->SetPreScrapeHook([&cluster]() { cluster.PublishMetrics(); });
    admin->SetReady(true);
    printf("admin server listening on %s:%d\n", admin->host().c_str(),
           admin->port());
    fflush(stdout);
  }

  PregelixJobConfig job;
  job.input_dir = flags.Get("input");
  job.output_dir = flags.Get("output");
  job.max_supersteps = static_cast<int>(flags.GetInt("max-supersteps", 1000));
  job.checkpoint_interval =
      static_cast<int>(flags.GetInt("checkpoint-interval", 0));
  job.profile_plan = explain || flags.Has("profile");
  if (flags.Has("stall-factor")) {
    job.stall_factor = std::stod(flags.Get("stall-factor"));
  }

  ApplyPlanFlags(flags, &job);

  const std::string algorithm = flags.Get("algorithm");
  job.name = "cli-" + algorithm;

  std::shared_ptr<PregelProgram> adapter;
  PREGELIX_RETURN_NOT_OK(MakeAlgorithmAdapter(flags, algorithm, &adapter));

  if (flags.Has("verify")) {
    // Audit every plan this job can produce before running any of them.
    PREGELIX_RETURN_NOT_OK(VerifyJobPlans(&cluster, &dfs, job, adapter.get(),
                                          flags.Has("all-plans")));
  }

  JobResult result;
  PREGELIX_RETURN_NOT_OK(runtime.Run(adapter.get(), job, &result));

  if (!trace_out.empty()) {
    PREGELIX_RETURN_NOT_OK(tracer.ExportChromeTrace(trace_out));
    printf("trace (%llu events) in %s\n",
           static_cast<unsigned long long>(tracer.event_count()),
           trace_out.c_str());
  }
  if (!metrics_json.empty() || !metrics_prom.empty()) {
    cluster.PublishMetrics();
    TimeLedger::Global().PublishMetrics(&registry);
    if (!metrics_json.empty()) {
      PREGELIX_RETURN_NOT_OK(registry.ExportJson(metrics_json));
      printf("metrics in %s\n", metrics_json.c_str());
    }
    if (!metrics_prom.empty()) {
      PREGELIX_RETURN_NOT_OK(registry.ExportPrometheus(metrics_prom));
      // The ledger exposition rides in the same file, after the registry's
      // families — the same layout /metrics serves (DESIGN.md section 20).
      std::ofstream prom(metrics_prom, std::ios::app);
      if (!prom.is_open()) {
        return Status::IoError("cannot append to " + metrics_prom);
      }
      TimeLedger::Global().WritePrometheus(prom);
      prom.close();
      if (!prom.good()) return Status::IoError("short write to " + metrics_prom);
      printf("prometheus metrics in %s\n", metrics_prom.c_str());
    }
  }
  if (!events_out.empty()) {
    EventJournal::Global().FlushSpill();
    printf("event journal in %s\n", events_out.c_str());
  }
  // All observability output is on disk; silence the exit hooks so they
  // don't re-export over the finished files during exit().
  crash_dump::MarkClean();

  if (explain) {
    PREGELIX_RETURN_NOT_OK(PrintExplain(flags, result));
  }

  printf("%s: %lld supersteps over %lld vertices / %lld edges\n",
         algorithm.c_str(), static_cast<long long>(result.supersteps),
         static_cast<long long>(result.final_gs.num_vertices),
         static_cast<long long>(result.final_gs.num_edges));
  printf("simulated: load %.3fs + supersteps %.3fs + dump %.3fs = %.3fs "
         "(%.4fs/iteration); wall %.3fs\n",
         result.load_sim_seconds, result.supersteps_sim_seconds,
         result.dump_sim_seconds, result.total_sim_seconds,
         result.avg_iteration_sim_seconds, result.wall_seconds);
  if (algorithm == "triangles") {
    int64_t total = 0;
    if (DeserializeValue(Slice(result.final_gs.aggregate), &total)) {
      printf("triangles: %lld\n", static_cast<long long>(total));
    }
  }
  if (algorithm == "cliques") {
    std::pair<int64_t, int64_t> agg;
    if (DeserializeValue(Slice(result.final_gs.aggregate), &agg)) {
      printf("maximal cliques (>=3): %lld, largest: %lld\n",
             static_cast<long long>(agg.first),
             static_cast<long long>(agg.second));
    }
  }
  if (flags.Has("stats")) {
    printf("%-10s %-8s %-12s %-10s %-10s %-12s %-10s\n", "superstep", "join",
           "sim-seconds", "live", "messages", "disk-bytes", "net-bytes");
    for (const SuperstepStats& s : result.superstep_stats) {
      printf("%-10lld %-8s %-12.4f %-10lld %-10lld %-12llu %-10llu\n",
             static_cast<long long>(s.superstep),
             s.used_left_outer_join ? "LOJ" : "FOJ", s.sim_seconds,
             static_cast<long long>(s.live_vertices),
             static_cast<long long>(s.messages),
             static_cast<unsigned long long>(
                 s.cluster_delta.disk_read_bytes +
                 s.cluster_delta.disk_write_bytes),
             static_cast<unsigned long long>(s.cluster_delta.net_bytes));
    }
  }
  if (!job.output_dir.empty()) {
    printf("results in %s\n", dfs.Resolve(job.output_dir).c_str());
  }
  return Status::OK();
}

/// `pregelix serve`: a standalone scrape target. Useful as a systemd-style
/// long-running endpoint and for smoke tests (tools/bench_smoke.sh); jobs
/// run in *other* processes do not show up here — the registries are
/// process-local. --admin-port=0 picks an ephemeral port and prints it.
Status ServeCommand(const Flags& flags) {
  server::ServerOptions opts;
  opts.port = static_cast<int>(flags.GetInt("admin-port", 9090));
  opts.build_info = "pregelix serve";
  server::ObservabilityServer srv(opts, nullptr, nullptr, nullptr);
  PREGELIX_RETURN_NOT_OK(srv.Start());
  srv.SetReady(true);
  EventJournal::Global().Append("server.start", "", -1,
                                {{"port", std::to_string(srv.port())}});
  printf("admin server listening on %s:%d\n", srv.host().c_str(),
         srv.port());
  fflush(stdout);

  const int64_t serve_seconds = flags.GetInt("serve-seconds", 0);
  const auto started = std::chrono::steady_clock::now();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (serve_seconds > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(serve_seconds)) {
      break;
    }
  }
  srv.Stop();
  return Status::OK();
}

Status GenerateCommand(const Flags& flags) {
  DistributedFileSystem dfs(flags.Get("dfs"));
  GraphStats stats;
  const std::string type = flags.Get("type", "webmap");
  const int64_t vertices = flags.GetInt("vertices", 10000);
  const int parts = static_cast<int>(flags.GetInt("parts", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (type == "webmap") {
    PREGELIX_RETURN_NOT_OK(GenerateWebmapLike(
        dfs, flags.Get("out"), parts, vertices,
        std::stod(flags.Get("degree", "8.0")), seed, &stats));
  } else if (type == "btc") {
    PREGELIX_RETURN_NOT_OK(GenerateBtcLike(
        dfs, flags.Get("out"), parts, vertices,
        std::stod(flags.Get("degree", "8.94")), seed, &stats));
  } else {
    return Status::InvalidArgument("unknown --type=" + type);
  }
  printf("%s: %lld vertices, %llu edges (avg degree %.2f), %.2f MB\n",
         flags.Get("out").c_str(), static_cast<long long>(stats.num_vertices),
         static_cast<unsigned long long>(stats.num_edges),
         stats.avg_degree(),
         static_cast<double>(stats.size_bytes) / (1 << 20));
  return Status::OK();
}

Status StatsCommand(const Flags& flags) {
  DistributedFileSystem dfs(flags.Get("dfs"));
  GraphStats stats;
  PREGELIX_RETURN_NOT_OK(MeasureGraph(dfs, flags.Get("input"), &stats));
  printf("%s: %lld vertices, %llu edges (avg degree %.2f), %.2f MB\n",
         flags.Get("input").c_str(),
         static_cast<long long>(stats.num_vertices),
         static_cast<unsigned long long>(stats.num_edges),
         stats.avg_degree(),
         static_cast<double>(stats.size_bytes) / (1 << 20));
  return Status::OK();
}

Status SampleCommand(const Flags& flags) {
  DistributedFileSystem dfs(flags.Get("dfs"));
  PREGELIX_RETURN_NOT_OK(SampleGraphDir(
      dfs, flags.Get("input"), flags.Get("out"),
      static_cast<int>(flags.GetInt("parts", 4)),
      flags.GetInt("vertices", 1000),
      static_cast<uint64_t>(flags.GetInt("seed", 42))));
  GraphStats stats;
  PREGELIX_RETURN_NOT_OK(MeasureGraph(dfs, flags.Get("out"), &stats));
  printf("sampled %s -> %s: %lld vertices, %llu edges\n",
         flags.Get("input").c_str(), flags.Get("out").c_str(),
         static_cast<long long>(stats.num_vertices),
         static_cast<unsigned long long>(stats.num_edges));
  return Status::OK();
}

Status ScaleUpCommand(const Flags& flags) {
  DistributedFileSystem dfs(flags.Get("dfs"));
  GraphStats stats;
  PREGELIX_RETURN_NOT_OK(ScaleUpGraph(
      dfs, flags.Get("input"), flags.Get("out"),
      static_cast<int>(flags.GetInt("parts", 4)),
      static_cast<int>(flags.GetInt("factor", 2)), &stats));
  printf("scaled %s x%lld -> %s: %lld vertices, %llu edges\n",
         flags.Get("input").c_str(),
         static_cast<long long>(flags.GetInt("factor", 2)),
         flags.Get("out").c_str(),
         static_cast<long long>(stats.num_vertices),
         static_cast<unsigned long long>(stats.num_edges));
  return Status::OK();
}

int Main(int argc, char** argv) {
  InitLogLevelFromEnv();
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      fprintf(stderr, "bad flag: %s\n", arg.c_str());
      return Usage();
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values[arg] = "true";
    } else {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  if (flags.Has("log-level")) {
    LogLevel level;
    if (!ParseLogLevel(flags.Get("log-level"), &level)) {
      fprintf(stderr, "bad --log-level=%s (want debug|info|warn|error)\n",
              flags.Get("log-level").c_str());
      return Usage();
    }
    SetLogLevel(level);
  }
  if (!flags.Has("dfs") && command != "serve" && command != "verify") {
    fprintf(stderr, "--dfs=<root-dir> is required\n");
    return Usage();
  }
  Status s;
  if (command == "serve") {
    s = ServeCommand(flags);
  } else if (command == "verify") {
    s = VerifyCommand(flags);
  } else if (command == "run") {
    s = RunCommand(flags, /*explain=*/false);
  } else if (command == "explain") {
    s = RunCommand(flags, /*explain=*/true);
  } else if (command == "generate") {
    s = GenerateCommand(flags);
  } else if (command == "stats") {
    s = StatsCommand(flags);
  } else if (command == "sample") {
    s = SampleCommand(flags);
  } else if (command == "scaleup") {
    s = ScaleUpCommand(flags);
  } else {
    return Usage();
  }
  if (!s.ok()) {
    fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pregelix

int main(int argc, char** argv) { return pregelix::Main(argc, argv); }
