// pregelix: command-line driver for the built-in algorithm library.
//
// A downstream user's entry point — generate or sample graphs, inspect them,
// and run any built-in vertex program with the paper's physical plan hints,
// without writing C++ (the analog of the Pregelix jar's Client.run).
//
//   pregelix generate --dfs=/tmp/d --type=webmap --vertices=20000 --out=web
//   pregelix stats    --dfs=/tmp/d --input=web
//   pregelix run      --dfs=/tmp/d --algorithm=pagerank --input=web
//                     --output=ranks --workers=4 --join=fullouter --stats
//   pregelix sample   --dfs=/tmp/d --input=web --out=web-small --vertices=2000
//
// Run with no arguments for full usage.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "algorithms/algorithms.h"
#include "common/metrics_registry.h"
#include "common/temp_dir.h"
#include "common/trace.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/sampler.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values.find(key);
    return it == values.end() ? def : std::stoll(it->second);
  }
  bool Has(const std::string& key) const { return values.count(key) > 0; }
};

int Usage() {
  printf(R"(pregelix — Pregel graph analytics on a dataflow engine

usage: pregelix <command> --dfs=<root-dir> [flags]

commands:
  generate   create a synthetic graph
      --type=webmap|btc         degree profile (directed power-law / undirected)
      --vertices=N              vertex count
      --degree=D                average degree (default 8.0 / 8.94)
      --out=DIR                 DFS-relative output directory
      --parts=P                 part files (default 4)
      --seed=S                  deterministic seed (default 42)
  scaleup    copy+renumber an existing graph (Table 4 recipe)
      --input=DIR --out=DIR --factor=K [--parts=P]
  sample     random-walk down-sample (Table 3 recipe)
      --input=DIR --out=DIR --vertices=N [--parts=P] [--seed=S]
  stats      print vertex/edge/size statistics of a graph directory
      --input=DIR
  run        execute a built-in algorithm
      --algorithm=pagerank|sssp|cc|reachability|triangles|cliques|bfs-tree|scc
      --input=DIR [--output=DIR]
      --workers=N               simulated worker machines (default 4)
      --worker-ram-mb=M         simulated RAM per worker (default 16)
      --join=fullouter|leftouter|adaptive   (default fullouter)
      --groupby=sort|hashsort               (default sort)
      --connector=unmerged|merged           (default unmerged)
      --storage=btree|lsm                   (default btree)
      --source=ID               source vertex (sssp/reachability/bfs-tree)
      --iterations=K            PageRank iterations (default 10)
      --checkpoint-interval=K   checkpoint every K supersteps (default off)
      --max-supersteps=K        safety bound (default 1000)
      --stats                   print per-superstep statistics
      --trace-out=FILE          write a Chrome trace_event JSON (open in
                                chrome://tracing or ui.perfetto.dev)
      --metrics-json=FILE       write the metrics registry as JSON
)");
  return 2;
}

Status RunCommand(const Flags& flags) {
  DistributedFileSystem dfs(flags.Get("dfs"));
  TempDir scratch("pregelix-cli");

  ClusterConfig config;
  config.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  config.worker_ram_bytes =
      static_cast<size_t>(flags.GetInt("worker-ram-mb", 16)) << 20;
  config.temp_root = scratch.Sub("cluster");
  const std::string trace_out = flags.Get("trace-out");
  const std::string metrics_json = flags.Get("metrics-json");
  Tracer tracer;
  MetricsRegistry registry;
  if (!trace_out.empty()) {
    tracer.Enable();
    config.tracer = &tracer;
  }
  if (!metrics_json.empty()) {
    config.metrics_registry = &registry;
  }
  SimulatedCluster cluster(config);
  PregelixRuntime runtime(&cluster, &dfs);

  PregelixJobConfig job;
  job.input_dir = flags.Get("input");
  job.output_dir = flags.Get("output");
  job.max_supersteps = static_cast<int>(flags.GetInt("max-supersteps", 1000));
  job.checkpoint_interval =
      static_cast<int>(flags.GetInt("checkpoint-interval", 0));

  const std::string join = flags.Get("join", "fullouter");
  job.join = join == "leftouter" ? JoinStrategy::kLeftOuter
             : join == "adaptive" ? JoinStrategy::kAdaptive
                                  : JoinStrategy::kFullOuter;
  job.groupby = flags.Get("groupby", "sort") == "hashsort"
                    ? GroupByStrategy::kHashSort
                    : GroupByStrategy::kSort;
  job.groupby_connector = flags.Get("connector", "unmerged") == "merged"
                              ? GroupByConnector::kMerged
                              : GroupByConnector::kUnmerged;
  job.storage = flags.Get("storage", "btree") == "lsm"
                    ? VertexStorage::kLsmBTree
                    : VertexStorage::kBTree;

  const std::string algorithm = flags.Get("algorithm");
  const int64_t source = flags.GetInt("source", 0);
  const int iterations = static_cast<int>(flags.GetInt("iterations", 10));
  job.name = "cli-" + algorithm;

  // Own the typed program + adapter pair for the chosen algorithm.
  std::unique_ptr<PregelProgram> adapter;
  PageRankProgram pagerank(iterations);
  SsspProgram sssp(source);
  ConnectedComponentsProgram cc;
  ReachabilityProgram reach(source);
  TriangleCountProgram triangles;
  MaximalCliquesProgram cliques;
  BfsTreeProgram bfs_tree(source);
  SccProgram scc;
  if (algorithm == "pagerank") {
    adapter = std::make_unique<PageRankProgram::Adapter>(&pagerank);
  } else if (algorithm == "sssp") {
    adapter = std::make_unique<SsspProgram::Adapter>(&sssp);
  } else if (algorithm == "cc") {
    adapter = std::make_unique<ConnectedComponentsProgram::Adapter>(&cc);
  } else if (algorithm == "reachability") {
    adapter = std::make_unique<ReachabilityProgram::Adapter>(&reach);
  } else if (algorithm == "triangles") {
    adapter = std::make_unique<TriangleCountProgram::Adapter>(&triangles);
  } else if (algorithm == "cliques") {
    adapter = std::make_unique<MaximalCliquesProgram::Adapter>(&cliques);
  } else if (algorithm == "bfs-tree") {
    adapter = std::make_unique<BfsTreeProgram::Adapter>(&bfs_tree);
  } else if (algorithm == "scc") {
    adapter = std::make_unique<SccProgram::Adapter>(&scc);
  } else {
    return Status::InvalidArgument("unknown --algorithm=" + algorithm);
  }

  JobResult result;
  PREGELIX_RETURN_NOT_OK(runtime.Run(adapter.get(), job, &result));

  if (!trace_out.empty()) {
    PREGELIX_RETURN_NOT_OK(tracer.ExportChromeTrace(trace_out));
    printf("trace (%llu events) in %s\n",
           static_cast<unsigned long long>(tracer.event_count()),
           trace_out.c_str());
  }
  if (!metrics_json.empty()) {
    cluster.PublishMetrics();
    PREGELIX_RETURN_NOT_OK(registry.ExportJson(metrics_json));
    printf("metrics in %s\n", metrics_json.c_str());
  }

  printf("%s: %lld supersteps over %lld vertices / %lld edges\n",
         algorithm.c_str(), static_cast<long long>(result.supersteps),
         static_cast<long long>(result.final_gs.num_vertices),
         static_cast<long long>(result.final_gs.num_edges));
  printf("simulated: load %.3fs + supersteps %.3fs + dump %.3fs = %.3fs "
         "(%.4fs/iteration); wall %.3fs\n",
         result.load_sim_seconds, result.supersteps_sim_seconds,
         result.dump_sim_seconds, result.total_sim_seconds,
         result.avg_iteration_sim_seconds, result.wall_seconds);
  if (algorithm == "triangles") {
    int64_t total = 0;
    if (DeserializeValue(Slice(result.final_gs.aggregate), &total)) {
      printf("triangles: %lld\n", static_cast<long long>(total));
    }
  }
  if (algorithm == "cliques") {
    std::pair<int64_t, int64_t> agg;
    if (DeserializeValue(Slice(result.final_gs.aggregate), &agg)) {
      printf("maximal cliques (>=3): %lld, largest: %lld\n",
             static_cast<long long>(agg.first),
             static_cast<long long>(agg.second));
    }
  }
  if (flags.Has("stats")) {
    printf("%-10s %-8s %-12s %-10s %-10s %-12s %-10s\n", "superstep", "join",
           "sim-seconds", "live", "messages", "disk-bytes", "net-bytes");
    for (const SuperstepStats& s : result.superstep_stats) {
      printf("%-10lld %-8s %-12.4f %-10lld %-10lld %-12llu %-10llu\n",
             static_cast<long long>(s.superstep),
             s.used_left_outer_join ? "LOJ" : "FOJ", s.sim_seconds,
             static_cast<long long>(s.live_vertices),
             static_cast<long long>(s.messages),
             static_cast<unsigned long long>(
                 s.cluster_delta.disk_read_bytes +
                 s.cluster_delta.disk_write_bytes),
             static_cast<unsigned long long>(s.cluster_delta.net_bytes));
    }
  }
  if (!job.output_dir.empty()) {
    printf("results in %s\n", dfs.Resolve(job.output_dir).c_str());
  }
  return Status::OK();
}

Status GenerateCommand(const Flags& flags) {
  DistributedFileSystem dfs(flags.Get("dfs"));
  GraphStats stats;
  const std::string type = flags.Get("type", "webmap");
  const int64_t vertices = flags.GetInt("vertices", 10000);
  const int parts = static_cast<int>(flags.GetInt("parts", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (type == "webmap") {
    PREGELIX_RETURN_NOT_OK(GenerateWebmapLike(
        dfs, flags.Get("out"), parts, vertices,
        std::stod(flags.Get("degree", "8.0")), seed, &stats));
  } else if (type == "btc") {
    PREGELIX_RETURN_NOT_OK(GenerateBtcLike(
        dfs, flags.Get("out"), parts, vertices,
        std::stod(flags.Get("degree", "8.94")), seed, &stats));
  } else {
    return Status::InvalidArgument("unknown --type=" + type);
  }
  printf("%s: %lld vertices, %llu edges (avg degree %.2f), %.2f MB\n",
         flags.Get("out").c_str(), static_cast<long long>(stats.num_vertices),
         static_cast<unsigned long long>(stats.num_edges),
         stats.avg_degree(),
         static_cast<double>(stats.size_bytes) / (1 << 20));
  return Status::OK();
}

Status StatsCommand(const Flags& flags) {
  DistributedFileSystem dfs(flags.Get("dfs"));
  GraphStats stats;
  PREGELIX_RETURN_NOT_OK(MeasureGraph(dfs, flags.Get("input"), &stats));
  printf("%s: %lld vertices, %llu edges (avg degree %.2f), %.2f MB\n",
         flags.Get("input").c_str(),
         static_cast<long long>(stats.num_vertices),
         static_cast<unsigned long long>(stats.num_edges),
         stats.avg_degree(),
         static_cast<double>(stats.size_bytes) / (1 << 20));
  return Status::OK();
}

Status SampleCommand(const Flags& flags) {
  DistributedFileSystem dfs(flags.Get("dfs"));
  PREGELIX_RETURN_NOT_OK(SampleGraphDir(
      dfs, flags.Get("input"), flags.Get("out"),
      static_cast<int>(flags.GetInt("parts", 4)),
      flags.GetInt("vertices", 1000),
      static_cast<uint64_t>(flags.GetInt("seed", 42))));
  GraphStats stats;
  PREGELIX_RETURN_NOT_OK(MeasureGraph(dfs, flags.Get("out"), &stats));
  printf("sampled %s -> %s: %lld vertices, %llu edges\n",
         flags.Get("input").c_str(), flags.Get("out").c_str(),
         static_cast<long long>(stats.num_vertices),
         static_cast<unsigned long long>(stats.num_edges));
  return Status::OK();
}

Status ScaleUpCommand(const Flags& flags) {
  DistributedFileSystem dfs(flags.Get("dfs"));
  GraphStats stats;
  PREGELIX_RETURN_NOT_OK(ScaleUpGraph(
      dfs, flags.Get("input"), flags.Get("out"),
      static_cast<int>(flags.GetInt("parts", 4)),
      static_cast<int>(flags.GetInt("factor", 2)), &stats));
  printf("scaled %s x%lld -> %s: %lld vertices, %llu edges\n",
         flags.Get("input").c_str(),
         static_cast<long long>(flags.GetInt("factor", 2)),
         flags.Get("out").c_str(),
         static_cast<long long>(stats.num_vertices),
         static_cast<unsigned long long>(stats.num_edges));
  return Status::OK();
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      fprintf(stderr, "bad flag: %s\n", arg.c_str());
      return Usage();
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values[arg] = "true";
    } else {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  if (!flags.Has("dfs")) {
    fprintf(stderr, "--dfs=<root-dir> is required\n");
    return Usage();
  }
  Status s;
  if (command == "run") {
    s = RunCommand(flags);
  } else if (command == "generate") {
    s = GenerateCommand(flags);
  } else if (command == "stats") {
    s = StatsCommand(flags);
  } else if (command == "sample") {
    s = SampleCommand(flags);
  } else if (command == "scaleup") {
    s = ScaleUpCommand(flags);
  } else {
    return Usage();
  }
  if (!s.ok()) {
    fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pregelix

int main(int argc, char** argv) { return pregelix::Main(argc, argv); }
