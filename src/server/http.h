#ifndef PREGELIX_SERVER_HTTP_H_
#define PREGELIX_SERVER_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Minimal HTTP/1.1 request/response types for the observability server
// (DESIGN.md "Live observability server"). Parsing is a pure function over
// the bytes received so far — no sockets — so partial reads and the limit
// edge cases (oversized URI/headers) are unit-testable without a network.

namespace pregelix {
namespace server {

struct HttpRequest {
  std::string method;  ///< as received, e.g. "GET"
  std::string target;  ///< the raw request-target, path + optional ?query
  std::string path;    ///< target up to '?'
  std::string query;   ///< target after '?' (no '?'), may be empty
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Hard limits the parser enforces *while* bytes arrive, so a hostile or
/// confused client cannot make the server buffer without bound.
struct ParseLimits {
  size_t max_uri_bytes = 2048;     ///< request-target length -> 414
  size_t max_header_bytes = 8192;  ///< whole head (line + headers) -> 431
};

enum class ParseOutcome {
  kOk,             ///< complete request parsed into *out
  kNeedMore,       ///< no full head yet; call again with more bytes
  kBadRequest,     ///< malformed request line or header -> 400
  kUriTooLong,     ///< request-target exceeds max_uri_bytes -> 414
  kHeaderTooLarge  ///< head exceeds max_header_bytes -> 431
};

/// Parses the request head out of `data` (everything received so far).
/// Returns kNeedMore until the blank line arrives, unless a limit is
/// already provably exceeded by the partial bytes. Bodies are not consumed
/// (every endpoint is GET; a body, if any, is ignored).
ParseOutcome ParseHttpRequest(std::string_view data, const ParseLimits& limits,
                              HttpRequest* out);

struct HttpResponse {
  int code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra headers, e.g. {"Allow", "GET"} on a 405.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Standard reason phrase for the status codes the server emits.
const char* ReasonPhrase(int code);

/// Renders the full HTTP/1.1 wire form (Content-Length + Connection: close).
std::string SerializeResponse(const HttpResponse& resp);

/// Value of `key` in an application/x-www-form-urlencoded query string
/// ("a=1&b=2"); empty when absent. No percent-decoding (the server's query
/// values are plain integers).
std::string QueryParam(const std::string& query, const std::string& key);

}  // namespace server
}  // namespace pregelix

#endif  // PREGELIX_SERVER_HTTP_H_
