#ifndef PREGELIX_SERVER_JOB_REGISTRY_H_
#define PREGELIX_SERVER_JOB_REGISTRY_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/time_ledger.h"

// Live job status for the observability server (DESIGN.md "Live
// observability server").
//
// The Pregel runtime publishes into the registry at superstep boundaries —
// counters, the latest SuperstepStats brief, checkpoint/recovery
// transitions, watchdog stalls, and (when profiling is on) the cumulative
// plan profile pre-serialized with the deterministic `pregelix explain`
// JSON writer. Server handler threads read it concurrently; everything is
// behind one LockRank::kJobRegistry mutex, and publishers never hold any
// other engine lock while calling in (the driver publishes between jobs/
// supersteps; the watchdog holds only its own lower-ranked lock).
//
// The registry deliberately depends only on src/common: the runtime hands
// it plain fields, not runtime types, so src/pregel can link against it
// without a cycle.

namespace pregelix {
namespace server {

/// The per-superstep brief the runtime publishes at each barrier.
struct SuperstepBrief {
  int64_t superstep = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;
  int64_t live_vertices = 0;
  int64_t messages = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t spill_count = 0;
  bool left_outer_join = false;
  /// Resolved physical plan ("join/groupby/connector"); empty for briefs
  /// published by pre-plan phases (load).
  std::string plan;
  /// Time-ledger delta across this superstep, per category (DESIGN.md §20).
  /// All-zero when the ledger is disabled. Signed: a reattribution whose
  /// wait straddles the superstep boundary can nudge a bucket negative.
  std::array<int64_t, kNumTimeCategories> ledger_ns{};
};

enum class JobState { kRunning, kFinished, kFailed };

const char* JobStateName(JobState state);

/// One tracked job. Copied out whole for inspection; the registry owns the
/// canonical instance.
struct JobStatus {
  std::string job_id;
  std::string name;
  JobState state = JobState::kRunning;
  int64_t started_wall_us = 0;
  uint64_t started_steady_ns = 0;
  int starts = 0;  ///< >1 after a resume or pipelined re-start

  int64_t superstep = 0;          ///< last completed superstep
  int64_t running_superstep = 0;  ///< in flight right now (0 = at a barrier)
  int64_t live_vertices = 0;
  int64_t messages = 0;
  uint64_t bytes_shuffled_total = 0;
  uint64_t spill_count_total = 0;
  int64_t checkpoint_superstep = -1;  ///< newest committed checkpoint
  int recoveries = 0;
  int64_t stalls = 0;
  int64_t last_stalled_superstep = -1;
  /// Latest resolved physical plan ("join/groupby/connector") and the
  /// cumulative count of plan-knob switches the chooser has made.
  std::string plan;
  int64_t plan_switches = 0;
  std::string error;  ///< non-empty iff state == kFailed

  std::deque<SuperstepBrief> recent;  ///< newest last, bounded window
  /// Cumulative plan profile as deterministic (timing-free) JSON; empty
  /// when the job runs without --profile.
  std::string profile_json;
};

/// Thread-safe job table. Publish methods are cheap (one lock, field
/// writes); unknown job_ids are created on first touch so partial publish
/// orders cannot lose updates.
class JobStatusRegistry {
 public:
  /// Superstep briefs retained per job for the /jobs/<id> rollup.
  static constexpr size_t kRecentWindow = 64;
  /// Finished jobs retained before the oldest are evicted.
  static constexpr size_t kMaxJobs = 128;

  JobStatusRegistry() = default;
  JobStatusRegistry(const JobStatusRegistry&) = delete;
  JobStatusRegistry& operator=(const JobStatusRegistry&) = delete;

  void OnJobStart(const std::string& job_id, const std::string& name);
  void OnSuperstepStart(const std::string& job_id, int64_t superstep);
  void OnSuperstep(const std::string& job_id, const SuperstepBrief& brief,
                   std::string profile_json);
  void OnCheckpoint(const std::string& job_id, int64_t superstep);
  void OnRecovery(const std::string& job_id, int64_t checkpoint_superstep);
  void OnStall(const std::string& job_id, int64_t superstep);
  /// Published by the driver each superstep after plan resolution; `plan`
  /// is the "join/groupby/connector" string, `switches` how many knobs
  /// changed vs the previous superstep.
  void OnPlanDecision(const std::string& job_id, const std::string& plan,
                      int switches);
  void OnJobFinish(const std::string& job_id, bool ok,
                   const std::string& error);

  /// Copies one job's status; false when unknown.
  bool Get(const std::string& job_id, JobStatus* out) const;
  /// Job ids currently tracked, in deterministic (lexicographic) order.
  std::vector<std::string> JobIds() const;
  size_t size() const;
  int64_t running_jobs() const;

  /// `GET /jobs` body: one summary object per job.
  void WriteJobsJson(std::ostream& os) const;
  /// `GET /jobs/<id>` body: full status + recent supersteps + profile.
  /// Returns false (nothing written) for an unknown id.
  bool WriteJobJson(const std::string& job_id, std::ostream& os) const;

  /// Drops every record (tests).
  void Reset();

  /// Process-wide default instance (what the runtime publishes into).
  static JobStatusRegistry& Global();

 private:
  JobStatus* GetOrCreateLocked(const std::string& job_id) REQUIRES(mutex_);
  void EvictFinishedLocked() REQUIRES(mutex_);

  mutable Mutex mutex_{"job_registry", LockRank::kJobRegistry};
  std::map<std::string, JobStatus> jobs_ GUARDED_BY(mutex_);
};

}  // namespace server
}  // namespace pregelix

#endif  // PREGELIX_SERVER_JOB_REGISTRY_H_
