#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/fault_injection.h"
#include "common/time_ledger.h"

namespace pregelix {
namespace server {

namespace {

// The served endpoint table. lint_endpoints.py cross-checks these literals
// against the endpoint table in DESIGN.md §15 — keep both in sync.
constexpr const char* kEndpoints[] = {
    "/",           // endpoint index (this table, as text)
    "/metrics",    // Prometheus 0.0.4 exposition of the live registry
    "/healthz",    // liveness: 200 while the server thread runs
    "/readyz",     // readiness: 200 after SetReady(true), else 503
    "/statusz",    // build info, uptime, job/journal summary (JSON)
    "/jobs",       // all tracked jobs, summary per job (JSON)
    "/jobs/<id>",  // one job: counters, recent supersteps, plan profile
    "/events",     // journal replay: ?since=<seq>, JSONL in seq order
    "/profilez",   // time ledger: JSON, or ?format=collapsed flame stacks
};

void AppendJsonEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

uint64_t NowSteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Maps a request path onto the bounded endpoint-label vocabulary so the
/// pregelix.server.requests label set cannot grow with attacker-chosen
/// paths.
std::string NormalizeEndpoint(const std::string& path) {
  for (const char* e : kEndpoints) {
    if (path == e) return e;
  }
  if (path.rfind("/jobs/", 0) == 0) return "/jobs/<id>";
  return "other";
}

HttpResponse TextResponse(int code, std::string body) {
  HttpResponse resp;
  resp.code = code;
  resp.body = std::move(body);
  return resp;
}

HttpResponse JsonResponse(int code, std::string body) {
  HttpResponse resp;
  resp.code = code;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

}  // namespace

ObservabilityServer::ObservabilityServer(ServerOptions options,
                                         MetricsRegistry* metrics,
                                         JobStatusRegistry* jobs,
                                         EventJournal* journal)
    : options_(std::move(options)),
      metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Global()),
      jobs_(jobs != nullptr ? jobs : &JobStatusRegistry::Global()),
      journal_(journal != nullptr ? journal : &EventJournal::Global()) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  active_connections_ =
      metrics_->GetGauge("pregelix.server.active_connections");
  errors_accept_ = metrics_->GetCounter("pregelix.server.errors",
                                        {{"kind", "accept"}});
  errors_read_ =
      metrics_->GetCounter("pregelix.server.errors", {{"kind", "read"}});
  errors_write_ =
      metrics_->GetCounter("pregelix.server.errors", {{"kind", "write"}});
  errors_overflow_ = metrics_->GetCounter("pregelix.server.errors",
                                          {{"kind", "overflow"}});
}

ObservabilityServer::~ObservabilityServer() { Stop(); }

Status ObservabilityServer::Start() {
  if (running()) return Status::OK();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    bound_port_ = ntohs(addr.sin_port);
  }

  listen_fd_.store(fd, std::memory_order_release);
  started_steady_ns_ = NowSteadyNanos();
  {
    MutexLock lock(&mutex_);
    shutting_down_ = false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void ObservabilityServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock the accept loop, then the workers.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
    queue_cv_.NotifyAll();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Anything still queued gets closed unanswered.
  MutexLock lock(&mutex_);
  while (!queue_.empty()) {
    ::close(queue_.front());
    queue_.pop_front();
  }
}

void ObservabilityServer::SetPreScrapeHook(std::function<void()> hook) {
  MutexLock lock(&mutex_);
  pre_scrape_hook_ = std::move(hook);
}

double ObservabilityServer::UptimeSeconds() const {
  if (started_steady_ns_ == 0) return 0.0;
  return static_cast<double>(NowSteadyNanos() - started_steady_ns_) / 1e9;
}

void ObservabilityServer::AcceptLoop() {
  while (running()) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running()) break;
      if (errno == EINTR) continue;
      errors_accept_->Increment();
      if (errno == EBADF || errno == EINVAL) break;  // listener closed
      continue;
    }
    if (!fault::MaybeFail("server.accept").ok()) {
      // Injected accept failure: drop the connection before handling.
      errors_accept_->Increment();
      ::close(fd);
      continue;
    }
    bool overloaded = false;
    {
      MutexLock lock(&mutex_);
      if (queue_.size() >= options_.queue_capacity) {
        overloaded = true;
      } else {
        queue_.push_back(fd);
        queue_cv_.NotifyOne();
      }
    }
    if (overloaded) {
      // Canned 503 straight from the accept thread; never block on a
      // slow client here.
      errors_overflow_->Increment();
      CountRequest("other", 503);
      const std::string wire =
          SerializeResponse(TextResponse(503, "overloaded\n"));
      ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
    }
  }
}

void ObservabilityServer::WorkerLoop() {
  // Base category idle: a parked HTTP worker is idle, not serving; only the
  // per-connection kServe scope below counts as request handling.
  const bool attached = TimeLedger::AttachCurrentThread(
      TimeLedger::kServerWorker, TimeCategory::kIdle, "http.worker");
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(&mutex_);
      while (queue_.empty() && !shutting_down_) {
        queue_cv_.Wait(&mutex_);
      }
      if (queue_.empty() && shutting_down_) {
        if (attached) TimeLedger::DetachCurrentThread();
        return;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    ScopedTimeCategory serve(TimeCategory::kServe);
    ServeConnection(fd);
  }
}

void ObservabilityServer::ServeConnection(int fd) {
  active_connections_->Add(1);

  timeval timeout;
  timeout.tv_sec = options_.io_timeout_seconds;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  // Read until a full request head is parsed or a limit trips. The parser
  // re-runs over everything received so far; requests are small, so the
  // rescan is cheap and keeps partial-read handling trivially correct.
  std::string buffer;
  HttpRequest req;
  ParseOutcome outcome = ParseOutcome::kNeedMore;
  char chunk[4096];
  while (outcome == ParseOutcome::kNeedMore) {
    if (!fault::MaybeFail("server.read").ok()) {
      errors_read_->Increment();
      ::close(fd);
      active_connections_->Add(-1);
      return;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      errors_read_->Increment();
      ::close(fd);
      active_connections_->Add(-1);
      return;
    }
    if (n == 0) {
      // Peer closed without a full request head; nothing to answer.
      ::close(fd);
      active_connections_->Add(-1);
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    outcome = ParseHttpRequest(buffer, options_.limits, &req);
  }

  HttpResponse resp;
  std::string endpoint = "other";
  switch (outcome) {
    case ParseOutcome::kOk:
      endpoint = NormalizeEndpoint(req.path);
      resp = Dispatch(req);
      break;
    case ParseOutcome::kUriTooLong:
      resp = TextResponse(414, "request-target too long\n");
      CountRequest(endpoint, resp.code);
      break;
    case ParseOutcome::kHeaderTooLarge:
      resp = TextResponse(431, "request head too large\n");
      CountRequest(endpoint, resp.code);
      break;
    default:
      resp = TextResponse(400, "malformed request\n");
      CountRequest(endpoint, resp.code);
      break;
  }

  std::string wire = SerializeResponse(resp);
  size_t to_write = wire.size();
  const Status write_fault = fault::MaybeFailWrite("server.write", &to_write);
  if (!write_fault.ok()) {
    errors_write_->Increment();
    // Torn write: emit the surviving prefix, then drop the connection.
  }
  size_t written = 0;
  while (written < to_write) {
    const ssize_t n =
        ::send(fd, wire.data() + written, to_write - written, MSG_NOSIGNAL);
    if (n <= 0) {
      errors_write_->Increment();
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (written > 0) {
    metrics_
        ->GetCounter("pregelix.server.bytes_written", {{"endpoint", endpoint}})
        ->Add(written);
  }
  ::close(fd);
  active_connections_->Add(-1);
}

void ObservabilityServer::CountRequest(const std::string& endpoint,
                                       int code) {
  metrics_
      ->GetCounter("pregelix.server.requests",
                   {{"endpoint", endpoint}, {"code", std::to_string(code)}})
      ->Increment();
}

HttpResponse ObservabilityServer::Dispatch(const HttpRequest& req) {
  const std::string endpoint = NormalizeEndpoint(req.path);
  HttpResponse resp;
  if (req.method != "GET" && req.method != "HEAD") {
    resp = TextResponse(405, "only GET is supported\n");
    resp.headers.emplace_back("Allow", "GET");
  } else if (req.path == "/") {
    std::string body = "pregelix observability server\nendpoints:\n";
    for (const char* e : kEndpoints) {
      body += "  ";
      body += e;
      body += "\n";
    }
    resp = TextResponse(200, std::move(body));
  } else if (req.path == "/healthz") {
    resp = TextResponse(200, "ok\n");
  } else if (req.path == "/readyz") {
    resp = ready_.load(std::memory_order_acquire)
               ? TextResponse(200, "ready\n")
               : TextResponse(503, "not ready\n");
  } else if (req.path == "/metrics") {
    resp = HandleMetrics();
  } else if (req.path == "/profilez") {
    resp = HandleProfilez(req.query);
  } else if (req.path == "/statusz") {
    resp = HandleStatusz();
  } else if (req.path == "/jobs") {
    resp = HandleJobs();
  } else if (req.path.rfind("/jobs/", 0) == 0) {
    resp = HandleJob(req.path.substr(6));
  } else if (req.path == "/events") {
    resp = HandleEvents(req.query);
  } else {
    resp = TextResponse(404, "unknown path " + req.path + "\n");
  }
  if (req.method == "HEAD") resp.body.clear();
  CountRequest(endpoint, resp.code);
  return resp;
}

HttpResponse ObservabilityServer::HandleMetrics() {
  std::function<void()> hook;
  {
    MutexLock lock(&mutex_);
    hook = pre_scrape_hook_;
  }
  if (hook) hook();
  // Refresh the ledger gauges before the registry writes, then append the
  // ledger's own exposition (pregelix_time_seconds_total & friends) so one
  // scrape carries both (DESIGN.md §20).
  TimeLedger::Global().PublishMetrics(metrics_);
  std::ostringstream os;
  metrics_->WritePrometheus(os);
  TimeLedger::Global().WritePrometheus(os);
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = os.str();
  return resp;
}

HttpResponse ObservabilityServer::HandleProfilez(const std::string& query) {
  const std::string format = QueryParam(query, "format");
  std::ostringstream os;
  if (format == "collapsed") {
    // flamegraph.pl's collapsed-stack input: `worker;operator;category ns`.
    TimeLedger::Global().WriteCollapsed(os);
    return TextResponse(200, os.str());
  }
  if (!format.empty() && format != "json") {
    return TextResponse(400, "bad format= value (json|collapsed)\n");
  }
  TimeLedger::Global().WriteJson(os);
  return JsonResponse(200, os.str());
}

HttpResponse ObservabilityServer::HandleStatusz() {
  std::ostringstream os;
  os << "{\"build\":\"";
  AppendJsonEscaped(os, options_.build_info);
  os << "\",\"pid\":" << ::getpid()
     << ",\"uptime_seconds\":" << UptimeSeconds() << ",\"ready\":"
     << (ready_.load(std::memory_order_acquire) ? "true" : "false")
     << ",\"jobs\":{\"tracked\":" << jobs_->size()
     << ",\"running\":" << jobs_->running_jobs() << "}"
     << ",\"journal\":{\"last_seq\":" << journal_->last_seq()
     << ",\"dropped\":" << journal_->dropped()
     << ",\"capacity\":" << journal_->capacity() << "}}";
  return JsonResponse(200, os.str());
}

HttpResponse ObservabilityServer::HandleJobs() {
  std::ostringstream os;
  jobs_->WriteJobsJson(os);
  return JsonResponse(200, os.str());
}

HttpResponse ObservabilityServer::HandleJob(const std::string& job_id) {
  std::ostringstream os;
  if (job_id.empty() || !jobs_->WriteJobJson(job_id, os)) {
    std::ostringstream err;
    err << "{\"error\":\"unknown job\",\"job\":\"";
    AppendJsonEscaped(err, job_id);
    err << "\"}";
    return JsonResponse(404, err.str());
  }
  return JsonResponse(200, os.str());
}

HttpResponse ObservabilityServer::HandleEvents(const std::string& query) {
  uint64_t since = 0;
  const std::string since_str = QueryParam(query, "since");
  if (!since_str.empty()) {
    char* end = nullptr;
    since = std::strtoull(since_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return TextResponse(400, "bad since= value\n");
    }
  }
  size_t limit = 0;
  const std::string limit_str = QueryParam(query, "limit");
  if (!limit_str.empty()) {
    char* end = nullptr;
    limit = std::strtoull(limit_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return TextResponse(400, "bad limit= value\n");
    }
  }
  std::ostringstream os;
  journal_->WriteJsonl(os, since, limit);
  HttpResponse resp;
  resp.content_type = "application/x-ndjson";
  resp.body = os.str();
  return resp;
}

}  // namespace server
}  // namespace pregelix
