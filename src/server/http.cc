#include "server/http.h"

namespace pregelix {
namespace server {

namespace {

/// Slack for "METHOD " + " HTTP/1.1" around the request-target when judging
/// an unterminated first line against max_uri_bytes.
constexpr size_t kRequestLineSlack = 32;

}  // namespace

ParseOutcome ParseHttpRequest(std::string_view data, const ParseLimits& limits,
                              HttpRequest* out) {
  const size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // Incomplete head: reject early once a limit is provably exceeded, so
    // a client streaming an endless URI or header block is cut off at the
    // limit instead of buffered forever.
    const size_t line_end = data.find("\r\n");
    if (line_end == std::string_view::npos &&
        data.size() > limits.max_uri_bytes + kRequestLineSlack) {
      return ParseOutcome::kUriTooLong;
    }
    if (data.size() > limits.max_header_bytes) {
      return ParseOutcome::kHeaderTooLarge;
    }
    return ParseOutcome::kNeedMore;
  }
  if (head_end + 4 > limits.max_header_bytes) {
    return ParseOutcome::kHeaderTooLarge;
  }

  // Request line: METHOD SP request-target SP HTTP-version.
  const size_t line_end = data.find("\r\n");
  const std::string_view line = data.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    return ParseOutcome::kBadRequest;
  }
  const size_t sp2 = line.rfind(' ');
  if (sp2 == sp1 || sp2 + 1 >= line.size()) {
    return ParseOutcome::kBadRequest;
  }
  const std::string_view version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) return ParseOutcome::kBadRequest;
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target.find(' ') != std::string_view::npos) {
    return ParseOutcome::kBadRequest;
  }
  if (target.size() > limits.max_uri_bytes) return ParseOutcome::kUriTooLong;

  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(target);
  const size_t q = req.target.find('?');
  if (q == std::string::npos) {
    req.path = req.target;
  } else {
    req.path = req.target.substr(0, q);
    req.query = req.target.substr(q + 1);
  }

  // Header fields: "Name: value" per line until the blank line.
  size_t pos = line_end + 2;
  while (pos < head_end) {
    size_t eol = data.find("\r\n", pos);
    if (eol == std::string_view::npos || eol > head_end) eol = head_end;
    const std::string_view header = data.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return ParseOutcome::kBadRequest;
    }
    std::string_view value = header.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    req.headers.emplace_back(std::string(header.substr(0, colon)),
                             std::string(value));
  }

  *out = std::move(req);
  return ParseOutcome::kOk;
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 414:
      return "URI Too Long";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& resp) {
  std::string out;
  out.reserve(resp.body.size() + 256);
  out += "HTTP/1.1 " + std::to_string(resp.code) + " " +
         ReasonPhrase(resp.code) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  for (const auto& [name, value] : resp.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    pos = amp + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (pair == key) return "";
      continue;
    }
    if (pair.substr(0, eq) == key) return pair.substr(eq + 1);
  }
  return std::string();
}

}  // namespace server
}  // namespace pregelix
