#include "server/job_registry.h"

#include <algorithm>
#include <chrono>

namespace pregelix {
namespace server {

namespace {

void AppendJsonEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

int64_t NowWallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

uint64_t NowSteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shared summary fields between /jobs and /jobs/<id>.
void WriteSummaryFields(std::ostream& os, const JobStatus& j) {
  os << "\"job\":\"";
  AppendJsonEscaped(os, j.job_id);
  os << "\",\"name\":\"";
  AppendJsonEscaped(os, j.name);
  os << "\",\"state\":\"" << JobStateName(j.state) << "\""
     << ",\"started_wall_us\":" << j.started_wall_us
     << ",\"uptime_seconds\":";
  const double uptime =
      j.started_steady_ns == 0
          ? 0.0
          : static_cast<double>(NowSteadyNanos() - j.started_steady_ns) / 1e9;
  os << uptime << ",\"superstep\":" << j.superstep
     << ",\"running_superstep\":" << j.running_superstep
     << ",\"live_vertices\":" << j.live_vertices
     << ",\"messages\":" << j.messages
     << ",\"bytes_shuffled\":" << j.bytes_shuffled_total
     << ",\"spills\":" << j.spill_count_total
     << ",\"checkpoint_superstep\":" << j.checkpoint_superstep
     << ",\"recoveries\":" << j.recoveries << ",\"stalls\":" << j.stalls
     << ",\"last_stalled_superstep\":" << j.last_stalled_superstep;
  if (!j.plan.empty()) {
    os << ",\"plan\":\"";
    AppendJsonEscaped(os, j.plan);
    os << "\",\"plan_switches\":" << j.plan_switches;
  }
  if (!j.error.empty()) {
    os << ",\"error\":\"";
    AppendJsonEscaped(os, j.error);
    os << "\"";
  }
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kRunning:
      return "running";
    case JobState::kFinished:
      return "finished";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

JobStatus* JobStatusRegistry::GetOrCreateLocked(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    EvictFinishedLocked();
    it = jobs_.emplace(job_id, JobStatus{}).first;
    it->second.job_id = job_id;
    it->second.started_wall_us = NowWallMicros();
    it->second.started_steady_ns = NowSteadyNanos();
  }
  return &it->second;
}

void JobStatusRegistry::EvictFinishedLocked() {
  // Bound the table: drop the lexicographically-first non-running jobs.
  // Running jobs are never evicted (the publisher still holds their id).
  while (jobs_.size() >= kMaxJobs) {
    auto victim = jobs_.end();
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->second.state != JobState::kRunning) {
        victim = it;
        break;
      }
    }
    if (victim == jobs_.end()) return;  // every slot is a live job
    jobs_.erase(victim);
  }
}

void JobStatusRegistry::OnJobStart(const std::string& job_id,
                                   const std::string& name) {
  MutexLock lock(&mutex_);
  JobStatus* j = GetOrCreateLocked(job_id);
  j->name = name;
  j->state = JobState::kRunning;
  j->error.clear();
  ++j->starts;
  if (j->starts > 1) {
    // Restart of a known id (recovery rerun): keep cumulative counters but
    // refresh the start clock so uptime reflects the current attempt.
    j->started_wall_us = NowWallMicros();
    j->started_steady_ns = NowSteadyNanos();
  }
}

void JobStatusRegistry::OnSuperstepStart(const std::string& job_id,
                                         int64_t superstep) {
  MutexLock lock(&mutex_);
  GetOrCreateLocked(job_id)->running_superstep = superstep;
}

void JobStatusRegistry::OnSuperstep(const std::string& job_id,
                                    const SuperstepBrief& brief,
                                    std::string profile_json) {
  MutexLock lock(&mutex_);
  JobStatus* j = GetOrCreateLocked(job_id);
  j->superstep = std::max(j->superstep, brief.superstep);
  j->running_superstep = 0;
  j->live_vertices = brief.live_vertices;
  j->messages = brief.messages;
  j->bytes_shuffled_total += brief.bytes_shuffled;
  j->spill_count_total += brief.spill_count;
  j->recent.push_back(brief);
  while (j->recent.size() > kRecentWindow) j->recent.pop_front();
  if (!profile_json.empty()) j->profile_json = std::move(profile_json);
}

void JobStatusRegistry::OnCheckpoint(const std::string& job_id,
                                     int64_t superstep) {
  MutexLock lock(&mutex_);
  JobStatus* j = GetOrCreateLocked(job_id);
  j->checkpoint_superstep = std::max(j->checkpoint_superstep, superstep);
}

void JobStatusRegistry::OnRecovery(const std::string& job_id,
                                   int64_t checkpoint_superstep) {
  MutexLock lock(&mutex_);
  JobStatus* j = GetOrCreateLocked(job_id);
  ++j->recoveries;
  j->checkpoint_superstep =
      std::max(j->checkpoint_superstep, checkpoint_superstep);
  j->state = JobState::kRunning;
  j->error.clear();
}

void JobStatusRegistry::OnStall(const std::string& job_id, int64_t superstep) {
  MutexLock lock(&mutex_);
  JobStatus* j = GetOrCreateLocked(job_id);
  ++j->stalls;
  j->last_stalled_superstep = std::max(j->last_stalled_superstep, superstep);
}

void JobStatusRegistry::OnPlanDecision(const std::string& job_id,
                                       const std::string& plan,
                                       int switches) {
  MutexLock lock(&mutex_);
  JobStatus* j = GetOrCreateLocked(job_id);
  j->plan = plan;
  j->plan_switches += switches;
}

void JobStatusRegistry::OnJobFinish(const std::string& job_id, bool ok,
                                    const std::string& error) {
  MutexLock lock(&mutex_);
  JobStatus* j = GetOrCreateLocked(job_id);
  j->state = ok ? JobState::kFinished : JobState::kFailed;
  j->running_superstep = 0;
  j->error = ok ? std::string() : error;
}

bool JobStatusRegistry::Get(const std::string& job_id, JobStatus* out) const {
  MutexLock lock(&mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<std::string> JobStatusRegistry::JobIds() const {
  std::vector<std::string> ids;
  MutexLock lock(&mutex_);
  ids.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) ids.push_back(id);
  return ids;
}

size_t JobStatusRegistry::size() const {
  MutexLock lock(&mutex_);
  return jobs_.size();
}

int64_t JobStatusRegistry::running_jobs() const {
  MutexLock lock(&mutex_);
  int64_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning) ++n;
  }
  return n;
}

void JobStatusRegistry::WriteJobsJson(std::ostream& os) const {
  MutexLock lock(&mutex_);
  os << "{\"jobs\":[";
  bool first = true;
  for (const auto& [id, job] : jobs_) {
    if (!first) os << ",";
    first = false;
    os << "{";
    WriteSummaryFields(os, job);
    os << "}";
  }
  os << "]}";
}

bool JobStatusRegistry::WriteJobJson(const std::string& job_id,
                                     std::ostream& os) const {
  MutexLock lock(&mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  const JobStatus& j = it->second;
  os << "{";
  WriteSummaryFields(os, j);
  os << ",\"recent_supersteps\":[";
  bool first = true;
  for (const SuperstepBrief& b : j.recent) {
    if (!first) os << ",";
    first = false;
    os << "{\"superstep\":" << b.superstep
       << ",\"wall_seconds\":" << b.wall_seconds
       << ",\"sim_seconds\":" << b.sim_seconds
       << ",\"live_vertices\":" << b.live_vertices
       << ",\"messages\":" << b.messages
       << ",\"bytes_shuffled\":" << b.bytes_shuffled
       << ",\"spills\":" << b.spill_count
       << ",\"left_outer_join\":" << (b.left_outer_join ? "true" : "false");
    if (!b.plan.empty()) {
      os << ",\"plan\":\"";
      AppendJsonEscaped(os, b.plan);
      os << "\"";
    }
    // Per-superstep time-ledger delta (DESIGN.md §20), non-zero categories
    // only; absent entirely when the ledger was off for this superstep.
    bool any_ledger = false;
    for (int64_t ns : b.ledger_ns) any_ledger = any_ledger || ns != 0;
    if (any_ledger) {
      os << ",\"ledger_ns\":{";
      bool first_cat = true;
      for (int c = 0; c < kNumTimeCategories; ++c) {
        if (b.ledger_ns[c] == 0) continue;
        if (!first_cat) os << ",";
        first_cat = false;
        os << "\"" << kTimeCategoryNames[c] << "\":" << b.ledger_ns[c];
      }
      os << "}";
    }
    os << "}";
  }
  os << "]";
  if (!j.profile_json.empty()) {
    os << ",\"profile\":" << j.profile_json;
  }
  os << "}";
  return true;
}

void JobStatusRegistry::Reset() {
  MutexLock lock(&mutex_);
  jobs_.clear();
}

JobStatusRegistry& JobStatusRegistry::Global() {
  static JobStatusRegistry* registry = new JobStatusRegistry();
  return *registry;
}

}  // namespace server
}  // namespace pregelix
