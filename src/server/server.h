#ifndef PREGELIX_SERVER_SERVER_H_
#define PREGELIX_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/event_journal.h"
#include "common/metrics_registry.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "server/http.h"
#include "server/job_registry.h"

// Embedded HTTP/1.1 observability server (DESIGN.md "Live observability
// server").
//
// One blocking accept thread feeds a bounded fd queue drained by a small
// fixed pool of worker threads; every connection is read with a receive
// timeout, answered with exactly one response, and closed (Connection:
// close). No external dependencies — raw POSIX sockets, loopback by
// default. The server only *reads* engine state (MetricsRegistry,
// JobStatusRegistry, EventJournal), so it can never deadlock a running job:
// handler threads take only the kServer / kJobRegistry / kEventJournal /
// kMetricsRegistry locks, each for one snapshot.
//
// Endpoint table (lint_endpoints.py cross-checks this against DESIGN.md):
// see kEndpoints in server.cc.

namespace pregelix {
namespace server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port is port() after Start
  int worker_threads = 2;
  size_t queue_capacity = 8;  ///< pending accepted fds; overflow -> 503
  ParseLimits limits;
  /// Per-connection receive/send timeout.
  int io_timeout_seconds = 5;
  /// Shown on /statusz (version, build type).
  std::string build_info = "pregelix-dev";
};

class ObservabilityServer {
 public:
  /// Null sources are replaced by the process-wide defaults
  /// (MetricsRegistry/JobStatusRegistry/EventJournal ::Global()).
  ObservabilityServer(ServerOptions options, MetricsRegistry* metrics,
                      JobStatusRegistry* jobs, EventJournal* journal);
  ~ObservabilityServer();

  ObservabilityServer(const ObservabilityServer&) = delete;
  ObservabilityServer& operator=(const ObservabilityServer&) = delete;

  /// Binds, listens, and starts the accept + worker threads. Fails (kIoError)
  /// if the address cannot be bound.
  Status Start();
  /// Stops accepting, drains the queue, joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound TCP port (after Start); 0 before.
  int port() const { return bound_port_; }
  const std::string& host() const { return options_.host; }

  /// /readyz flips 200/503 on this; starts false.
  void SetReady(bool ready) {
    ready_.store(ready, std::memory_order_release);
  }

  /// Invoked before serving /metrics so the embedding process can refresh
  /// point-in-time gauges (e.g. SimulatedCluster::PublishMetrics).
  void SetPreScrapeHook(std::function<void()> hook);

  /// Pure request -> response routing, no sockets. Exposed so tests can
  /// drive every endpoint without a network.
  HttpResponse Dispatch(const HttpRequest& req);

  /// Uptime since Start, for /statusz.
  double UptimeSeconds() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  HttpResponse HandleMetrics();
  HttpResponse HandleProfilez(const std::string& query);
  HttpResponse HandleStatusz();
  HttpResponse HandleJobs();
  HttpResponse HandleJob(const std::string& job_id);
  HttpResponse HandleEvents(const std::string& query);
  void CountRequest(const std::string& endpoint, int code);

  ServerOptions options_;
  MetricsRegistry* const metrics_;
  JobStatusRegistry* const jobs_;
  EventJournal* const journal_;

  std::atomic<bool> running_{false};
  std::atomic<bool> ready_{false};
  /// Atomic: Stop() closes and clears it while AcceptLoop still reads it.
  std::atomic<int> listen_fd_{-1};
  int bound_port_ = 0;
  uint64_t started_steady_ns_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  Mutex mutex_{"server", LockRank::kServer};
  CondVar queue_cv_;
  std::deque<int> queue_ GUARDED_BY(mutex_);
  bool shutting_down_ GUARDED_BY(mutex_) = false;
  std::function<void()> pre_scrape_hook_ GUARDED_BY(mutex_);

  // Self-metrics, registered in the served registry (DESIGN.md §10).
  Gauge* active_connections_ = nullptr;
  Counter* errors_accept_ = nullptr;
  Counter* errors_read_ = nullptr;
  Counter* errors_write_ = nullptr;
  Counter* errors_overflow_ = nullptr;
};

}  // namespace server
}  // namespace pregelix

#endif  // PREGELIX_SERVER_SERVER_H_
