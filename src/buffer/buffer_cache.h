#ifndef PREGELIX_BUFFER_BUFFER_CACHE_H_
#define PREGELIX_BUFFER_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "io/file.h"
#include "io/overlap.h"

namespace pregelix {

using PageId = uint32_t;

class BufferCache;

/// Pinned view of one page in the buffer pool. Must be unpinned (or
/// destroyed) before the page can be evicted. Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  ~PageHandle();

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return cache_ != nullptr; }
  char* data() const { return data_; }
  PageId page_id() const { return page_id_; }

  /// Marks the page dirty so eviction/flush writes it back.
  void MarkDirty();

  /// Explicit early unpin.
  void Release();

 private:
  friend class BufferCache;
  BufferCache* cache_ = nullptr;
  int slot_ = -1;
  char* data_ = nullptr;
  PageId page_id_ = 0;
  bool dirty_pending_ = false;
};

/// Shared LRU buffer pool over paged files (one per simulated worker).
///
/// This is the component that makes the whole stack "gracefully spill to disk
/// only when necessary using a standard replacement policy, i.e., LRU"
/// (paper Section 5.4). B-trees and LSM B-trees allocate all their pages
/// through it; when the working set exceeds `capacity_pages`, unpinned pages
/// are evicted (with write-back if dirty) and the resulting I/O is metered,
/// which is exactly what moves a workload from the in-memory regime to the
/// out-of-core regime in the experiments.
///
/// Thread-safe: concurrent jobs in the throughput experiment (Figure 13)
/// share one cache per worker.
class BufferCache {
 public:
  BufferCache(size_t page_size, size_t capacity_pages, WorkerMetrics* metrics);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  size_t page_size() const { return page_size_; }
  size_t capacity_pages() const { return capacity_pages_; }
  WorkerMetrics* metrics() const { return metrics_; }

  /// Attaches observability sinks (a cache is per simulated worker, so the
  /// worker id becomes the label). The access methods built on this cache
  /// (B-tree, LSM) reach the tracer/registry through these accessors.
  void SetObservability(Tracer* tracer, MetricsRegistry* registry,
                        int worker) {
    tracer_ = tracer;
    registry_ = registry;
    worker_ = worker;
  }
  Tracer* tracer() const { return tracer_; }
  MetricsRegistry* registry() const { return registry_; }
  int worker_id() const { return worker_; }

  /// Enables sequential read-ahead (DESIGN.md §19): a cache miss that
  /// extends a forward scan schedules the file's next page on the prefetch
  /// pool, and the following miss consumes the prefetched bytes instead of
  /// reading synchronously. One request in flight per file; the prefetched
  /// page rides the elevator seek model like the sync read it replaces.
  /// The runtime must outlive every Pin/Close on this cache — callers that
  /// destroy it earlier must DetachOverlap() first.
  void SetOverlap(OverlapRuntime* overlap) { overlap_ = overlap; }

  /// Settles every in-flight read-ahead and detaches the overlap runtime
  /// (the cache reverts to synchronous reads). For owners whose runtime
  /// dies before the cache.
  void DetachOverlap();

  /// Publishes hit/miss/eviction/writeback counts into `registry` as
  /// pregelix.buffer.* gauges labeled with this cache's worker id.
  void PublishMetrics(MetricsRegistry* registry) const;

  /// Opens (or creates) a paged file; returns a cache-local file id.
  Status OpenFile(const std::string& path, int* file_id);

  /// Flushes dirty pages and drops cached pages of the file; the id becomes
  /// invalid.
  Status CloseFile(int file_id);

  /// Closes (without flushing) and unlinks the file.
  Status DeleteFile(int file_id);

  /// Number of pages currently in the file.
  uint32_t NumPages(int file_id) const;

  /// Pins page `page` of `file_id`. The page must exist.
  Status Pin(int file_id, PageId page, PageHandle* out);

  /// Appends a zeroed page to the file and pins it.
  Status AllocatePage(int file_id, PageHandle* out);

  /// Writes back all dirty pages of the file (keeps them cached).
  Status FlushFile(int file_id);

  // --- introspection for tests and stats ---
  // Relaxed atomics: readable from a stats thread while a scan is in
  // flight (they were plain uint64_t once, which was a data race).
  uint64_t hit_count() const {
    return hits_.load(std::memory_order_relaxed);
  }
  uint64_t miss_count() const {
    return misses_.load(std::memory_order_relaxed);
  }
  uint64_t eviction_count() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t writeback_count() const {
    return writebacks_.load(std::memory_order_relaxed);
  }
  size_t pages_in_use() const;

 private:
  friend class PageHandle;

  struct Slot {
    std::string data;
    int file_id = -1;
    PageId page_id = 0;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;
    std::list<int>::iterator lru_pos;
    bool in_lru = false;
  };

  /// One in-flight sequential read-ahead. Heap-allocated so its address is
  /// stable under files_ reallocation while the prefetch closure writes
  /// into `buf` from the pool thread.
  struct ReadAhead {
    PrefetchPool::Slot slot;
    std::string buf;
    PageId page = 0;
    bool valid = false;  ///< a request is queued/running/ready on the pool
  };

  struct FileEntry {
    std::unique_ptr<RandomAccessFile> file;
    uint32_t num_pages = 0;
    bool open = false;
    std::string path;
    PageId last_miss_page = 0;  ///< elevator-model seek tracking
    bool touched = false;
    std::unique_ptr<ReadAhead> ahead;  ///< lazily created when overlap is on
  };

  static uint64_t Key(int file_id, PageId page) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(file_id)) << 32) |
           page;
  }

  void Unpin(int slot, bool dirty);

  Status GetFreeSlotLocked(int* slot_out) REQUIRES(mutex_);
  Status WriteBackLocked(Slot& slot) REQUIRES(mutex_);
  Status PinExistingOrLoadLocked(int file_id, PageId page, bool load,
                                 PageHandle* out) REQUIRES(mutex_);
  void TouchLocked(int slot) REQUIRES(mutex_);
  /// Awaits the file's in-flight read-ahead (if any) and discards it.
  /// Await, not Cancel: the background read always completes, so the disk
  /// and overlap byte counters stay deterministic regardless of pool
  /// timing. Returns the abandoned request's status.
  Status SettleReadAheadLocked(FileEntry& entry) REQUIRES(mutex_);

  const size_t page_size_;
  const size_t capacity_pages_;
  WorkerMetrics* const metrics_;
  Tracer* tracer_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
  int worker_ = 0;
  OverlapRuntime* overlap_ = nullptr;

  mutable Mutex mutex_{"buffer_cache", LockRank::kBufferCache};
  std::vector<Slot> slots_ GUARDED_BY(mutex_);
  /// Unpinned slots, least-recently-used first.
  std::list<int> lru_ GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, int> page_table_ GUARDED_BY(mutex_);
  std::vector<FileEntry> files_ GUARDED_BY(mutex_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> writebacks_{0};
};

}  // namespace pregelix

#endif  // PREGELIX_BUFFER_BUFFER_CACHE_H_
