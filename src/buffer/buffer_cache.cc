#include "buffer/buffer_cache.h"

#include <cstring>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/time_ledger.h"

namespace pregelix {

// ---------------------------------------------------------------------------
// PageHandle

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    cache_ = o.cache_;
    slot_ = o.slot_;
    data_ = o.data_;
    page_id_ = o.page_id_;
    dirty_pending_ = o.dirty_pending_;
    o.cache_ = nullptr;
    o.slot_ = -1;
    o.data_ = nullptr;
    o.dirty_pending_ = false;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  PREGELIX_DCHECK(valid());
  // Dirty flag is sticky; applied on release under the cache lock.
  dirty_pending_ = true;
}

void PageHandle::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(slot_, dirty_pending_);
    cache_ = nullptr;
    slot_ = -1;
    data_ = nullptr;
    dirty_pending_ = false;
  }
}

// ---------------------------------------------------------------------------
// BufferCache

BufferCache::BufferCache(size_t page_size, size_t capacity_pages,
                         WorkerMetrics* metrics)
    : page_size_(page_size),
      capacity_pages_(capacity_pages == 0 ? 1 : capacity_pages),
      metrics_(metrics) {
  slots_.resize(capacity_pages_);
}

BufferCache::~BufferCache() {
  size_t num_files;
  {
    MutexLock lock(&mutex_);
    num_files = files_.size();
  }
  // CloseFile is a no-op on already-closed ids, so closing every id in
  // order flushes exactly the still-open files.
  for (size_t i = 0; i < num_files; ++i) {
    Status s = CloseFile(static_cast<int>(i));
    if (!s.ok()) {
      PLOG(Warn) << "buffer cache close on destruction: " << s.ToString();
    }
  }
}

Status BufferCache::OpenFile(const std::string& path, int* file_id) {
  MutexLock lock(&mutex_);
  FileEntry entry;
  PREGELIX_RETURN_NOT_OK(RandomAccessFile::Open(path, metrics_, &entry.file));
  entry.num_pages = static_cast<uint32_t>(entry.file->size() / page_size_);
  entry.open = true;
  entry.path = path;
  // Reuse a closed id if possible.
  for (size_t i = 0; i < files_.size(); ++i) {
    if (!files_[i].open) {
      files_[i] = std::move(entry);
      *file_id = static_cast<int>(i);
      return Status::OK();
    }
  }
  files_.push_back(std::move(entry));
  *file_id = static_cast<int>(files_.size() - 1);
  return Status::OK();
}

Status BufferCache::CloseFile(int file_id) {
  MutexLock lock(&mutex_);
  PREGELIX_CHECK(file_id >= 0 && file_id < static_cast<int>(files_.size()));
  FileEntry& entry = files_[file_id];
  if (!entry.open) return Status::OK();
  Status result = SettleReadAheadLocked(entry);
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.valid && slot.file_id == file_id) {
      PREGELIX_CHECK(slot.pin_count == 0)
          << "closing file " << entry.path << " with pinned page "
          << slot.page_id;
      if (slot.dirty) {
        Status s = WriteBackLocked(slot);
        if (!s.ok() && result.ok()) result = s;
      }
      page_table_.erase(Key(file_id, slot.page_id));
      if (slot.in_lru) {
        lru_.erase(slot.lru_pos);
        slot.in_lru = false;
      }
      slot.valid = false;
      slot.file_id = -1;
    }
  }
  entry.file.reset();
  entry.open = false;
  return result;
}

Status BufferCache::DeleteFile(int file_id) {
  std::string path;
  {
    MutexLock lock(&mutex_);
    PREGELIX_CHECK(file_id >= 0 && file_id < static_cast<int>(files_.size()));
    FileEntry& entry = files_[file_id];
    if (!entry.open) return Status::OK();
    path = entry.path;
    (void)SettleReadAheadLocked(entry);  // the file is going away anyway
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.valid && slot.file_id == file_id) {
        PREGELIX_CHECK(slot.pin_count == 0);
        page_table_.erase(Key(file_id, slot.page_id));
        if (slot.in_lru) {
          lru_.erase(slot.lru_pos);
          slot.in_lru = false;
        }
        slot.valid = false;
        slot.file_id = -1;
      }
    }
    entry.file.reset();
    entry.open = false;
  }
  DeleteFileIfExists(path);
  return Status::OK();
}

Status BufferCache::SettleReadAheadLocked(FileEntry& entry) {
  if (entry.ahead == nullptr || !entry.ahead->valid) return Status::OK();
  // Ledger: blocked on a background read completing — io_wait (§20).
  ScopedTimeCategory io_wait(TimeCategory::kIoWait);
  Status s = overlap_->prefetch().Await(&entry.ahead->slot);
  entry.ahead->valid = false;
  return s;
}

void BufferCache::DetachOverlap() {
  MutexLock lock(&mutex_);
  if (overlap_ == nullptr) return;
  for (FileEntry& entry : files_) {
    (void)SettleReadAheadLocked(entry);
  }
  overlap_ = nullptr;
}

uint32_t BufferCache::NumPages(int file_id) const {
  MutexLock lock(&mutex_);
  PREGELIX_CHECK(file_id >= 0 && file_id < static_cast<int>(files_.size()));
  return files_[file_id].num_pages;
}

void BufferCache::TouchLocked(int slot_idx) {
  Slot& slot = slots_[slot_idx];
  if (slot.in_lru) {
    lru_.erase(slot.lru_pos);
    slot.in_lru = false;
  }
}

Status BufferCache::WriteBackLocked(Slot& slot) {
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("buffer.writeback"));
  FileEntry& entry = files_[slot.file_id];
  PREGELIX_CHECK(entry.open);
  PREGELIX_RETURN_NOT_OK(entry.file->Write(
      static_cast<uint64_t>(slot.page_id) * page_size_,
      Slice(slot.data.data(), page_size_)));
  slot.dirty = false;
  writebacks_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BufferCache::GetFreeSlotLocked(int* slot_out) {
  // First: any never-used slot.
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].valid && slots_[i].pin_count == 0) {
      if (slots_[i].data.size() != page_size_) {
        slots_[i].data.assign(page_size_, '\0');
      }
      *slot_out = static_cast<int>(i);
      return Status::OK();
    }
  }
  // Otherwise evict the LRU unpinned page.
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("buffer.eviction"));
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer cache: all pages pinned (capacity " +
        std::to_string(capacity_pages_) + ")");
  }
  int victim = lru_.front();
  lru_.pop_front();
  Slot& slot = slots_[victim];
  slot.in_lru = false;
  PREGELIX_CHECK(slot.valid && slot.pin_count == 0);
  if (slot.dirty) {
    PREGELIX_RETURN_NOT_OK(WriteBackLocked(slot));
  }
  page_table_.erase(Key(slot.file_id, slot.page_id));
  slot.valid = false;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  *slot_out = victim;
  return Status::OK();
}

Status BufferCache::PinExistingOrLoadLocked(int file_id, PageId page,
                                            bool load, PageHandle* out) {
  auto it = page_table_.find(Key(file_id, page));
  int slot_idx;
  if (it != page_table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    slot_idx = it->second;
    TouchLocked(slot_idx);
    ++slots_[slot_idx].pin_count;
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    PREGELIX_RETURN_NOT_OK(GetFreeSlotLocked(&slot_idx));
    Slot& slot = slots_[slot_idx];
    slot.file_id = file_id;
    slot.page_id = page;
    slot.dirty = false;
    slot.valid = true;
    slot.pin_count = 1;
    if (load) {
      // Elevator model: misses that move FORWARD within a file ride the
      // sweeping head (readahead / short forward seeks); only backward
      // jumps and the first touch of a file pay a full seek. This matches
      // how the access methods behave on a real disk: bulk-load-ordered
      // scans and vid-sorted probe sweeps are sequential, true random
      // probing pays about half the seeks (the backward half).
      FileEntry& entry = files_[file_id];
      const bool sequential =
          entry.touched && page > entry.last_miss_page;
      entry.touched = true;
      entry.last_miss_page = page;
      if (metrics_ != nullptr && !sequential) {
        metrics_->AddSeeks(1);
        if (getenv("PREGELIX_SEEK_DEBUG") != nullptr) {
          fprintf(stderr, "SEEK %s page %u\n", entry.path.c_str(), page);
        }
      }
      // Sequential read-ahead (DESIGN.md §19): a forward scan's next page
      // may already be in flight on the prefetch pool — consume it instead
      // of re-reading. A mismatched page is wasted work: the await (never
      // a cancel) still completes the background read, keeping the byte
      // counters deterministic, and the sync read below takes over.
      bool satisfied = false;
      if (entry.ahead != nullptr && entry.ahead->valid) {
        ReadAhead& ahead = *entry.ahead;
        Status as;
        {
          // Ledger: park on the in-flight read-ahead — io_wait (§20).
          ScopedTimeCategory io_wait(TimeCategory::kIoWait);
          as = overlap_->prefetch().Await(&ahead.slot);
        }
        ahead.valid = false;
        if (ahead.page == page) {
          if (!as.ok()) {
            slot.valid = false;
            slot.pin_count = 0;
            return as;
          }
          memcpy(slot.data.data(), ahead.buf.data(), page_size_);
          satisfied = true;
        }
      }
      if (!satisfied) {
        Status s = entry.file->Read(
            static_cast<uint64_t>(page) * page_size_, page_size_,
            slot.data.data());
        if (!s.ok()) {
          slot.valid = false;
          slot.pin_count = 0;
          return s;
        }
      }
      // Keep the scan one page ahead. Only pages absent from the cache are
      // eligible, which also makes the read race-free: a page can only
      // re-enter the cache through the await above, so no write-back can
      // touch its file region while the background read is in flight.
      if (overlap_ != nullptr && sequential && page + 1 < entry.num_pages &&
          page_table_.find(Key(file_id, page + 1)) == page_table_.end()) {
        if (entry.ahead == nullptr) {
          entry.ahead = std::make_unique<ReadAhead>();
        }
        ReadAhead& ahead = *entry.ahead;
        ahead.page = page + 1;
        if (ahead.buf.size() != page_size_) {
          ahead.buf.assign(page_size_, '\0');
        }
        RandomAccessFile* file = entry.file.get();
        WorkerMetrics* metrics = metrics_;
        char* buf = ahead.buf.data();
        const uint64_t off = static_cast<uint64_t>(ahead.page) * page_size_;
        const size_t n = page_size_;
        overlap_->prefetch().Schedule(
            &ahead.slot, [file, metrics, buf, off, n]() -> Status {
              PREGELIX_RETURN_NOT_OK(fault::MaybeFail("io.prefetch.read"));
              PREGELIX_RETURN_NOT_OK(file->Read(off, n, buf));
              if (metrics != nullptr) metrics->AddOverlapIo(n);
              return Status::OK();
            });
        ahead.valid = true;
      }
    } else {
      memset(slot.data.data(), 0, page_size_);
    }
    page_table_[Key(file_id, page)] = slot_idx;
  }
  out->Release();
  out->cache_ = this;
  out->slot_ = slot_idx;
  out->data_ = slots_[slot_idx].data.data();
  out->page_id_ = page;
  return Status::OK();
}

Status BufferCache::Pin(int file_id, PageId page, PageHandle* out) {
  MutexLock lock(&mutex_);
  PREGELIX_CHECK(file_id >= 0 && file_id < static_cast<int>(files_.size()) &&
                 files_[file_id].open);
  if (page >= files_[file_id].num_pages) {
    return Status::InvalidArgument("page " + std::to_string(page) +
                                   " out of range");
  }
  return PinExistingOrLoadLocked(file_id, page, /*load=*/true, out);
}

Status BufferCache::AllocatePage(int file_id, PageHandle* out) {
  MutexLock lock(&mutex_);
  PREGELIX_CHECK(file_id >= 0 && file_id < static_cast<int>(files_.size()) &&
                 files_[file_id].open);
  FileEntry& entry = files_[file_id];
  const PageId page = entry.num_pages;
  ++entry.num_pages;
  PREGELIX_RETURN_NOT_OK(
      PinExistingOrLoadLocked(file_id, page, /*load=*/false, out));
  // New pages are dirty by construction: they exist only in memory.
  slots_[out->slot_].dirty = true;
  return Status::OK();
}

Status BufferCache::FlushFile(int file_id) {
  MutexLock lock(&mutex_);
  PREGELIX_CHECK(file_id >= 0 && file_id < static_cast<int>(files_.size()) &&
                 files_[file_id].open);
  for (Slot& slot : slots_) {
    if (slot.valid && slot.file_id == file_id && slot.dirty) {
      PREGELIX_RETURN_NOT_OK(WriteBackLocked(slot));
    }
  }
  return Status::OK();
}

void BufferCache::Unpin(int slot_idx, bool dirty) {
  MutexLock lock(&mutex_);
  Slot& slot = slots_[slot_idx];
  PREGELIX_CHECK(slot.valid && slot.pin_count > 0);
  if (dirty) slot.dirty = true;
  if (--slot.pin_count == 0) {
    lru_.push_back(slot_idx);
    slot.lru_pos = std::prev(lru_.end());
    slot.in_lru = true;
  }
}

void BufferCache::PublishMetrics(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const MetricLabels labels{{"worker", std::to_string(worker_)}};
  registry->GetGauge("pregelix.buffer.hits", labels)
      ->Set(static_cast<int64_t>(hit_count()));
  registry->GetGauge("pregelix.buffer.misses", labels)
      ->Set(static_cast<int64_t>(miss_count()));
  registry->GetGauge("pregelix.buffer.evictions", labels)
      ->Set(static_cast<int64_t>(eviction_count()));
  registry->GetGauge("pregelix.buffer.writebacks", labels)
      ->Set(static_cast<int64_t>(writeback_count()));
}

size_t BufferCache::pages_in_use() const {
  MutexLock lock(&mutex_);
  size_t n = 0;
  for (const Slot& slot : slots_) {
    if (slot.valid) ++n;
  }
  return n;
}

}  // namespace pregelix
