// Genome assembly path merging: the Genomix use case of paper Section 6.
//
// Genomix builds a De Bruijn graph from genome reads and then repeatedly
// (a) cleans noise patterns and (b) merges unbranched paths until long
// contiguous sequences ("contigs") remain. This stresses exactly the
// features the paper calls out:
//   - graph mutations (vertices are removed as paths merge),
//   - drastically growing vertex values (merged sequences) -> LSM storage,
//   - chains of compatible jobs -> job pipelining (Section 5.6).
//
// The synthetic graph is a set of disjoint simple paths (unbranched runs of
// the De Bruijn graph) plus noise "tips" hanging off them. Two pipelined
// jobs run: tip removal, then head-token path contraction — each round the
// current head of every path hands its sequence to its successor and
// removes itself, so each path collapses into one long contig.
//
//   $ ./genome_paths

#include <cstdio>
#include <sstream>

#include "common/random.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"
#include "pregel/typed.h"

using namespace pregelix;

namespace {

// Vertex values are DNA fragments with an optional 1-char marker prefix:
//   '!' = noise tip (removed by cleaning), 'H' = current head of its path.
constexpr char kTipMark = '!';
constexpr char kHeadMark = 'H';

bool HasMark(const std::string& v, char mark) {
  return !v.empty() && v[0] == mark;
}
std::string StripMark(const std::string& v) {
  return (HasMark(v, kTipMark) || HasMark(v, kHeadMark)) ? v.substr(1) : v;
}

/// Job 1 — tip removal (graph cleaning, simplified from the Genomix
/// pattern set [45]): marked noise vertices delete themselves.
class TipRemovalProgram
    : public TypedVertexProgram<std::string, Empty, int64_t> {
 public:
  using Adapter = TypedProgramAdapter<std::string, Empty, int64_t>;

  explicit TipRemovalProgram(const std::vector<std::string>* fragments)
      : fragments_(fragments) {}

  void Compute(VertexT& vertex, MessageIterator<int64_t>& messages) override {
    if (vertex.superstep() == 1 && HasMark(vertex.value(), kTipMark)) {
      vertex.RemoveVertex(vertex.id());
    }
    vertex.VoteToHalt();
  }

  std::string InitialValue(int64_t vid,
                           const std::vector<int64_t>&) const override {
    return (*fragments_)[vid];
  }
  std::string FormatValue(int64_t, const std::string& v) const override {
    return StripMark(v);
  }

 private:
  const std::vector<std::string>* fragments_;
};

/// Job 2 — path merging by head contraction: only the head of a path (a
/// vertex with no incoming edges, tracked by the 'H' marker) merges. It
/// hands its accumulated sequence to its unique successor and removes
/// itself; the successor prepends the sequence and becomes the new head.
/// Terminates when every path is a single vertex (the tail, out-degree 0).
class PathMergeProgram
    : public TypedVertexProgram<std::string, Empty, std::string> {
 public:
  using Adapter = TypedProgramAdapter<std::string, Empty, std::string>;

  void Compute(VertexT& vertex,
               MessageIterator<std::string>& messages) override {
    while (messages.HasNext()) {
      // A merge hand-off: prepend and become the head.
      const std::string handed = messages.Next();
      vertex.set_value(std::string(1, kHeadMark) + handed +
                       StripMark(vertex.value()));
    }
    if (HasMark(vertex.value(), kHeadMark) && vertex.edges().size() == 1) {
      vertex.SendMessage(vertex.edges()[0].dst, StripMark(vertex.value()));
      vertex.RemoveVertex(vertex.id());
      return;  // merged away; no halt vote
    }
    vertex.VoteToHalt();
  }

  std::string FormatValue(int64_t, const std::string& v) const override {
    return std::to_string(StripMark(v).size());  // contig length
  }
};

constexpr const char* kBases = "ACGT";

}  // namespace

int main() {
  TempDir scratch("genome");
  DistributedFileSystem dfs(scratch.Sub("dfs"));
  ClusterConfig config;
  config.num_workers = 4;
  config.worker_ram_bytes = 4u << 20;
  config.temp_root = scratch.Sub("cluster");
  SimulatedCluster cluster(config);

  // 40 disjoint simple paths of 50 nodes (unbranched De Bruijn runs) plus
  // 200 noise tips, each tip pointing into a random path node.
  Random rnd(11);
  InMemoryGraph graph;
  const int kPaths = 40, kPathLen = 50, kTips = 200;
  const int64_t n = kPaths * kPathLen;
  graph.adj.resize(n + kTips);
  std::vector<std::string> fragment(n + kTips);
  for (int64_t v = 0; v < n + kTips; ++v) {
    for (int b = 0; b < 8; ++b) fragment[v] += kBases[rnd.Uniform(4)];
  }
  for (int p = 0; p < kPaths; ++p) {
    for (int i = 0; i < kPathLen - 1; ++i) {
      const int64_t v = static_cast<int64_t>(p) * kPathLen + i;
      graph.adj[v].push_back(v + 1);
    }
    fragment[static_cast<int64_t>(p) * kPathLen].insert(0, 1, kHeadMark);
  }
  for (int t = 0; t < kTips; ++t) {
    const int64_t tip = n + t;
    graph.adj[tip].push_back(static_cast<int64_t>(rnd.Uniform(n)));
    fragment[tip].insert(0, 1, kTipMark);
  }
  PREGELIX_CHECK_OK(WriteGraph(dfs, "debruijn/graph", graph, 4));
  printf("de-bruijn-like graph: %lld nodes (%d paths x %d + %d tips)\n",
         static_cast<long long>(graph.num_vertices()), kPaths, kPathLen,
         kTips);

  TipRemovalProgram tip_removal(&fragment);
  TipRemovalProgram::Adapter tip_adapter(&tip_removal);
  PathMergeProgram path_merge;
  PathMergeProgram::Adapter merge_adapter(&path_merge);

  // Both jobs use LSM storage (drastic value-size changes + heavy
  // mutations, paper Section 5.2) and run as one pipeline: no dump/re-load
  // between the cleaning job and the merging job (paper Section 5.6).
  PregelixJobConfig clean;
  clean.name = "genome";
  clean.input_dir = "debruijn/graph";
  clean.storage = VertexStorage::kLsmBTree;
  clean.join = JoinStrategy::kLeftOuter;
  PregelixJobConfig merge = clean;
  merge.output_dir = "debruijn/contigs";
  merge.max_supersteps = 400;

  PregelixRuntime runtime(&cluster, &dfs);
  std::vector<std::pair<PregelProgram*, PregelixJobConfig>> jobs = {
      {&tip_adapter, clean}, {&merge_adapter, merge}};
  std::vector<JobResult> results;
  PREGELIX_CHECK_OK(runtime.RunPipeline(jobs, &results));

  printf("\npipeline of 2 compatible jobs (no HDFS round trip between):\n");
  printf("  tip removal : %lld supersteps, %lld vertices remain "
         "(expected %lld)\n",
         static_cast<long long>(results[0].supersteps),
         static_cast<long long>(results[0].final_gs.num_vertices),
         static_cast<long long>(n));
  printf("  path merging: %lld supersteps, %lld contigs remain "
         "(expected %d)\n",
         static_cast<long long>(results[1].supersteps),
         static_cast<long long>(results[1].final_gs.num_vertices), kPaths);

  // Longest contig from the dump.
  std::vector<std::string> parts;
  PREGELIX_CHECK_OK(dfs.List("debruijn/contigs", &parts));
  int64_t longest = 0, contigs = 0;
  for (const std::string& part : parts) {
    std::string contents;
    PREGELIX_CHECK_OK(dfs.Read("debruijn/contigs/" + part, &contents));
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      int64_t vid, length;
      fields >> vid >> length;
      longest = std::max(longest, length);
      ++contigs;
    }
  }
  printf("  longest contig: %lld bases across %lld contigs "
         "(fragments were 8 bases; expected %d-base contigs)\n",
         static_cast<long long>(longest), static_cast<long long>(contigs),
         kPathLen * 8);
  return 0;
}
