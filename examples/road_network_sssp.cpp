// Road-network routing: single source shortest paths with the left outer
// join plan and the hints of the paper's Figure 9.
//
// Road networks produce extremely message-sparse Pregel executions (the
// frontier is a thin wave), which is exactly the workload where Pregelix's
// index left outer join plan shines: instead of scanning every vertex every
// superstep, the runtime probes the Vertex B-tree only for the frontier
// (paper Sections 5.3.2 and 7.5). This example builds a grid-ish road
// network, runs SSSP both ways, and prints the per-superstep frontier to
// show why the plans differ.
//
//   $ ./road_network_sssp

#include <cstdio>

#include "algorithms/sssp.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

using namespace pregelix;

namespace {

/// A W x H grid with 4-neighborhood: the classic road-network shape (long
/// diameter, constant degree).
InMemoryGraph MakeGrid(int64_t width, int64_t height) {
  InMemoryGraph graph;
  graph.adj.resize(width * height);
  auto id = [&](int64_t x, int64_t y) { return y * width + x; };
  for (int64_t y = 0; y < height; ++y) {
    for (int64_t x = 0; x < width; ++x) {
      if (x + 1 < width) {
        graph.adj[id(x, y)].push_back(id(x + 1, y));
        graph.adj[id(x + 1, y)].push_back(id(x, y));
      }
      if (y + 1 < height) {
        graph.adj[id(x, y)].push_back(id(x, y + 1));
        graph.adj[id(x, y + 1)].push_back(id(x, y));
      }
    }
  }
  return graph;
}

}  // namespace

int main() {
  TempDir scratch("road-sssp");
  DistributedFileSystem dfs(scratch.Sub("dfs"));
  ClusterConfig config;
  config.num_workers = 4;
  config.worker_ram_bytes = 8u << 20;
  config.temp_root = scratch.Sub("cluster");
  SimulatedCluster cluster(config);

  const InMemoryGraph grid = MakeGrid(120, 120);
  PREGELIX_CHECK_OK(WriteGraph(dfs, "roads", grid, 4));
  printf("road network: %lld intersections, %llu road segments\n",
         static_cast<long long>(grid.num_vertices()),
         static_cast<unsigned long long>(grid.num_edges()));

  auto run = [&](JoinStrategy join, const char* label) {
    SsspProgram program(/*source=*/0);
    SsspProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = std::string("road-sssp-") + label;
    job.input_dir = "roads";
    job.output_dir = std::string("dist-") + label;
    job.join = join;
    // The hints from the paper's Figure 9 main():
    job.groupby = GroupByStrategy::kHashSort;
    job.groupby_connector = GroupByConnector::kUnmerged;
    job.max_supersteps = 300;
    PregelixRuntime runtime(&cluster, &dfs);
    JobResult result;
    PREGELIX_CHECK_OK(runtime.Run(&adapter, job, &result));
    printf("\n%s join: %lld supersteps, %.3f simulated s total "
           "(%.4f s/iteration)\n",
           label, static_cast<long long>(result.supersteps),
           result.total_sim_seconds, result.avg_iteration_sim_seconds);
    return result;
  };

  JobResult loj = run(JoinStrategy::kLeftOuter, "left-outer");
  JobResult foj = run(JoinStrategy::kFullOuter, "full-outer");

  printf("\nfrontier per superstep (first 12): ");
  for (size_t i = 0; i < loj.superstep_stats.size() && i < 12; ++i) {
    printf("%lld ", static_cast<long long>(loj.superstep_stats[i].messages));
  }
  printf("...\nwith ~%lld vertices and a frontier this thin, the full scan "
         "pays for every vertex every superstep:\n",
         static_cast<long long>(loj.final_gs.num_vertices));
  printf("left outer join is %.1fx faster per iteration here (paper "
         "Figure 14a shows the same gap on BTC).\n",
         foj.avg_iteration_sim_seconds / loj.avg_iteration_sim_seconds);
  return 0;
}
