// Quickstart: run PageRank on a small generated web graph with Pregelix.
//
// This is the 60-second tour of the public API:
//   1. stand up a simulated shared-nothing cluster and a DFS,
//   2. generate (or bring) a graph in adjacency-text part files,
//   3. write a vertex program (or pick one from the built-in library),
//   4. choose physical plan hints on the job (Figure 9 of the paper),
//   5. run and read the results.
//
//   $ ./quickstart

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "algorithms/pagerank.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "pregel/runtime.h"

using namespace pregelix;

int main() {
  // 1. A 4-worker simulated cluster with 16 MB of "RAM" per worker, plus a
  //    directory-backed DFS for inputs, outputs, and checkpoints.
  TempDir scratch("quickstart");
  DistributedFileSystem dfs(scratch.Sub("dfs"));
  ClusterConfig config;
  config.num_workers = 4;
  config.worker_ram_bytes = 16u << 20;
  config.temp_root = scratch.Sub("cluster");
  SimulatedCluster cluster(config);

  // 2. A directed power-law "web" of 5,000 pages.
  GraphStats stats;
  Status s = GenerateWebmapLike(dfs, "input/web", /*num_parts=*/4,
                                /*num_vertices=*/5000, /*avg_degree=*/8.0,
                                /*seed=*/42, &stats);
  PREGELIX_CHECK_OK(s);
  printf("generated %lld pages, %llu links (%.2f avg degree)\n",
         static_cast<long long>(stats.num_vertices),
         static_cast<unsigned long long>(stats.num_edges),
         stats.avg_degree());

  // 3. The built-in PageRank program (10 iterations) behind the typed
  //    adapter that the engine consumes.
  PageRankProgram program(10);
  PageRankProgram::Adapter adapter(&program);

  // 4. Job configuration with physical hints. PageRank is message-intensive
  //    with every vertex live, so the full outer join plan and B-tree
  //    storage are the right defaults.
  PregelixJobConfig job;
  job.name = "quickstart-pagerank";
  job.input_dir = "input/web";
  job.output_dir = "output/ranks";
  job.join = JoinStrategy::kFullOuter;
  job.groupby = GroupByStrategy::kSort;
  job.storage = VertexStorage::kBTree;

  // 5. Run.
  PregelixRuntime runtime(&cluster, &dfs);
  JobResult result;
  PREGELIX_CHECK_OK(runtime.Run(&adapter, job, &result));
  printf("ran %lld supersteps (%.3f simulated s, %.3f wall s)\n",
         static_cast<long long>(result.supersteps), result.total_sim_seconds,
         result.wall_seconds);

  // Read the output part files back and show the top-ranked pages.
  std::vector<std::pair<double, int64_t>> ranks;
  std::vector<std::string> parts;
  PREGELIX_CHECK_OK(dfs.List("output/ranks", &parts));
  for (const std::string& part : parts) {
    std::string contents;
    PREGELIX_CHECK_OK(dfs.Read("output/ranks/" + part, &contents));
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      int64_t vid;
      double rank;
      fields >> vid >> rank;
      ranks.emplace_back(rank, vid);
    }
  }
  std::sort(ranks.rbegin(), ranks.rend());
  printf("\ntop 10 pages by rank:\n");
  for (int i = 0; i < 10 && i < static_cast<int>(ranks.size()); ++i) {
    printf("  page %-8lld rank %.6f\n",
           static_cast<long long>(ranks[i].second), ranks[i].first);
  }
  return 0;
}
