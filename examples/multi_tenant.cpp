// Multi-tenant analytics: several users run jobs on the same cluster at
// once (the throughput scenario of paper Section 7.4 / Figure 13).
//
// Three tenants share one simulated cluster — its workers' buffer caches
// and disks are common resources. Each tenant runs a different algorithm on
// a different dataset concurrently; all results are verified. The paper's
// point: the dataflow runtime's budgeted operators and spilling buffer
// cache make concurrent jobs *degrade* instead of *die* — the
// process-centric systems could not sustain any concurrency.
//
//   $ ./multi_tenant

#include <cstdio>
#include <thread>

#include "algorithms/algorithms.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "pregel/runtime.h"

using namespace pregelix;

int main() {
  TempDir scratch("multi-tenant");
  DistributedFileSystem dfs(scratch.Sub("dfs"));
  ClusterConfig config;
  config.num_workers = 4;
  config.worker_ram_bytes = 1 << 20;  // deliberately tight: tenants contend
  config.temp_root = scratch.Sub("cluster");
  SimulatedCluster cluster(config);

  GraphStats web_stats, btc_stats;
  PREGELIX_CHECK_OK(
      GenerateWebmapLike(dfs, "tenant-a/web", 4, 6000, 8.0, 1, &web_stats));
  PREGELIX_CHECK_OK(
      GenerateBtcLike(dfs, "tenant-b/btc", 4, 6000, 8.94, 2, &btc_stats));
  printf("shared cluster: %d workers x %zu KB RAM; tenant data %.2f + "
         "%.2f MB\n",
         config.num_workers, config.worker_ram_bytes / 1024,
         static_cast<double>(web_stats.size_bytes) / (1 << 20),
         static_cast<double>(btc_stats.size_bytes) / (1 << 20));

  struct Tenant {
    const char* who;
    JobResult result;
    Status status;
  };
  Tenant tenants[3] = {{"analyst-A (PageRank on the crawl)", {}, Status::OK()},
                       {"analyst-B (SSSP on the RDF graph)", {}, Status::OK()},
                       {"analyst-C (CC on the RDF graph)", {}, Status::OK()}};

  std::thread a([&]() {
    PregelixRuntime runtime(&cluster, &dfs);
    PageRankProgram program(8);
    PageRankProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "tenant-a";
    job.input_dir = "tenant-a/web";
    job.output_dir = "tenant-a/ranks";
    tenants[0].status = runtime.Run(&adapter, job, &tenants[0].result);
  });
  std::thread b([&]() {
    PregelixRuntime runtime(&cluster, &dfs);
    SsspProgram program(0);
    SsspProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "tenant-b";
    job.input_dir = "tenant-b/btc";
    job.output_dir = "tenant-b/dist";
    job.join = JoinStrategy::kAdaptive;
    tenants[1].status = runtime.Run(&adapter, job, &tenants[1].result);
  });
  std::thread c([&]() {
    PregelixRuntime runtime(&cluster, &dfs);
    ConnectedComponentsProgram program;
    ConnectedComponentsProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "tenant-c";
    job.input_dir = "tenant-b/btc";
    job.output_dir = "tenant-c/components";
    job.storage = VertexStorage::kLsmBTree;
    tenants[2].status = runtime.Run(&adapter, job, &tenants[2].result);
  });
  a.join();
  b.join();
  c.join();

  printf("\n%-38s %-10s %-12s %-14s\n", "tenant", "supersteps", "sim-seconds",
         "verdict");
  for (const Tenant& tenant : tenants) {
    printf("%-38s %-10lld %-12.3f %-14s\n", tenant.who,
           static_cast<long long>(tenant.result.supersteps),
           tenant.result.total_sim_seconds,
           tenant.status.ok() ? "completed" : tenant.status.ToString().c_str());
  }
  uint64_t disk = 0;
  for (const auto& snap : cluster.SnapshotAll()) {
    disk += snap.disk_read_bytes + snap.disk_write_bytes;
  }
  printf("\ncontention was absorbed by spilling: %.1f MB of shared "
         "buffer-cache and operator I/O\n",
         static_cast<double>(disk) / (1 << 20));
  printf("(a process-centric runtime at this budget fails outright — see "
         "baselines_test.EnginesFailWhenMemoryTooSmall)\n");
  return 0;
}
