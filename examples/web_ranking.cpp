// Web ranking at the edge of memory: the paper's motivating scenario.
//
// A small organization wants to rank a web crawl that is bigger than its
// cluster's aggregate RAM (the Giraph-mailing-list users of paper
// Section 2.3). This example runs PageRank on a crawl sized at ~2.5x the
// cluster's memory; the dataflow runtime transparently spills — no flags,
// no out-of-core mode, same plan — and the run statistics show the
// buffer-cache traffic that made it possible.
//
//   $ ./web_ranking

#include <cstdio>

#include "algorithms/pagerank.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "pregel/runtime.h"

using namespace pregelix;

int main() {
  TempDir scratch("web-ranking");
  DistributedFileSystem dfs(scratch.Sub("dfs"));

  // A deliberately memory-starved cluster: 2 workers x 256 KB.
  ClusterConfig config;
  config.num_workers = 2;
  config.worker_ram_bytes = 256 * 1024;
  config.page_size = 2048;
  config.frame_size = 8 * 1024;
  config.temp_root = scratch.Sub("cluster");
  SimulatedCluster cluster(config);

  GraphStats stats;
  PREGELIX_CHECK_OK(GenerateWebmapLike(dfs, "crawl", 4, 28000, 8.0, 7,
                                       &stats));
  const double ratio = static_cast<double>(stats.size_bytes) /
                       static_cast<double>(config.aggregate_ram_bytes());
  printf("crawl: %lld pages, %.2f MB text, %.2fx the cluster's RAM\n",
         static_cast<long long>(stats.num_vertices),
         static_cast<double>(stats.size_bytes) / (1 << 20), ratio);

  PageRankProgram program(10);
  PageRankProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "web-ranking";
  job.input_dir = "crawl";
  job.output_dir = "ranks";
  PregelixRuntime runtime(&cluster, &dfs);
  JobResult result;
  PREGELIX_CHECK_OK(runtime.Run(&adapter, job, &result));

  printf("\ncompleted %lld supersteps entirely out-of-core\n",
         static_cast<long long>(result.supersteps));
  printf("%-10s %-12s %-12s %-14s %-12s\n", "superstep", "sim-seconds",
         "messages", "disk-bytes", "net-bytes");
  for (const SuperstepStats& stats : result.superstep_stats) {
    printf("%-10lld %-12.3f %-12lld %-14llu %-12llu\n",
           static_cast<long long>(stats.superstep), stats.sim_seconds,
           static_cast<long long>(stats.messages),
           static_cast<unsigned long long>(
               stats.cluster_delta.disk_read_bytes +
               stats.cluster_delta.disk_write_bytes),
           static_cast<unsigned long long>(stats.cluster_delta.net_bytes));
  }
  printf("\nthe same job with the same plan runs in-memory when RAM "
         "suffices;\nthe only difference is the disk-bytes column "
         "(paper Sections 5.4 and 7.2).\n");
  return 0;
}
